package a

// table mirrors the steering table: built once, then read concurrently
// with no synchronization.
//
//spotfi:immutable
type table struct {
	grid []float64
	n    int
}

// newTable is a constructor (results include *table): writes are free.
func newTable(n int) *table {
	t := &table{n: n}
	t.grid = make([]float64, n)
	return t
}

// clone is a constructor too — a method whose result is the type.
func (t *table) clone() *table {
	c := &table{}
	c.n = t.n
	c.grid = append([]float64(nil), t.grid...)
	return c
}

func mutate(t *table) {
	t.n = 3 // want `field n of //spotfi:immutable type table is written outside its constructor`
}

func (t *table) grow() {
	t.grid = append(t.grid, 0) // want `field grid of //spotfi:immutable type table is written outside its constructor`
}

func bump(t *table) {
	t.n++ // want `field n of //spotfi:immutable type table is written outside its constructor`
}

func swap(a, b *table) {
	a.n, b.n = b.n, a.n // want `field n of //spotfi:immutable type table is written outside its constructor` `field n of //spotfi:immutable type table is written outside its constructor`
}

// --- clean shapes: no findings ---

// elementWrite mutates through the field value, not the field itself;
// the freeze contract is shallow and this is out of scope by design.
func elementWrite(t *table) {
	t.grid[0] = 1
}

// read-only access is always fine.
func read(t *table) int { return t.n }

// other types are not the analyzer's business.
type mutable struct{ n int }

func touch(m *mutable) { m.n = 7 }
