// Package immutfield enforces construct-then-freeze on types annotated
// //spotfi:immutable: their fields may be written only inside a
// constructor — a same-package function or method whose results include
// the type (by value or pointer).
//
// The repo's motivating case is the steering table: it is built once,
// cached globally, and then read concurrently by every pooled estimator
// without synchronization. That is only sound because nothing writes it
// after construction — a contract the type system cannot state, so this
// analyzer does.
//
// The contract is shallow: the analyzer flags direct field writes
// (assignment, op-assign, ++/--) outside constructors, not mutations
// through a previously-read field value (table.data[i] = v writes the
// element the field points at, not the field). Shared-slice spine
// mutations are the arena analyzers' concern; the freeze here is the
// field set itself.
//
// Annotated exported types are recorded as facts so dependent packages
// flag their writes too.
package immutfield

import (
	"go/ast"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

const name = "immutfield"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "report writes to fields of //spotfi:immutable types outside their constructors\n\n" +
		"Immutable types (the steering table) are read concurrently without\n" +
		"locks; any post-construction write is a data race.",
	Run:      run,
	FactType: func() any { return new(Fact) },
}

// Fact marks an annotated type for cross-package enforcement.
type Fact struct {
	Immutable bool `json:"immutable"`
}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.Facts
	if facts == nil {
		facts = analysis.NewFacts()
	}

	// Pass 1: locally annotated types (exported as facts).
	annotated := make(map[*types.TypeName]bool)
	var files []*ast.File
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		files = append(files, file)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !passutil.TypeDirective(gd, ts, "immutable") {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					annotated[tn] = true
					facts.Put(name, tn, &Fact{Immutable: true})
				}
			}
		}
	}
	immutable := func(tn *types.TypeName) bool {
		if tn == nil {
			return false
		}
		if annotated[tn] {
			return true
		}
		f, ok := facts.Get(name, tn)
		return ok && f.(*Fact).Immutable
	}

	// Pass 2: check every function body; constructors are exempt.
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			builds := constructedTypes(pass.TypesInfo, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, l := range n.Lhs {
						checkWrite(pass, immutable, builds, l)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, immutable, builds, n.X)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkWrite reports target if it is a direct field selector of an
// immutable type not under construction in this function.
func checkWrite(pass *analysis.Pass, immutable func(*types.TypeName) bool, builds map[*types.TypeName]bool, target ast.Expr) {
	sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	tn := namedOf(selection.Recv())
	if tn == nil || !immutable(tn) || builds[tn] {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s of //spotfi:immutable type %s is written outside its constructor", sel.Sel.Name, tn.Name())
}

// constructedTypes returns the named types a function counts as a
// constructor for: each result type, dereferenced.
func constructedTypes(info *types.Info, fd *ast.FuncDecl) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	if fd.Type.Results == nil {
		return out
	}
	for _, field := range fd.Type.Results.List {
		t := info.TypeOf(field.Type)
		if tn := namedOf(t); tn != nil {
			out[tn] = true
		}
	}
	return out
}

// namedOf unwraps pointers and returns the named type's TypeName, if any.
func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
