package immutfield_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/immutfield"
)

func TestImmutField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), immutfield.Analyzer, "a")
}

func TestImmutFieldSuppressed(t *testing.T) {
	analysistest.RunSuppressed(t, analysistest.TestData(t), immutfield.Analyzer, "suppressed")
}
