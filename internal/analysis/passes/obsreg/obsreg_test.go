package obsreg_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/obsreg"
)

func TestObsreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obsreg.Analyzer, "a")
}
