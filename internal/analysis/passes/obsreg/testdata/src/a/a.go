package a

import "spotfi/internal/obs"

// Registration in init paths: package-level vars, init, and constructors
// matching -obsreg.initpaths. All fine.

var reg = obs.NewRegistry()

var pkgCounter = reg.Counter("pkg_level_total", "registered at package level", nil)

func init() {
	reg.Gauge("init_gauge", "registered in init", nil)
}

type metrics struct {
	hits *obs.Counter
	lat  *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		hits: r.Counter("hits_total", "", nil),
		lat:  r.Histogram("latency_seconds", "", obs.LatencyBuckets, nil),
	}
}

func registerDepth(r *obs.Registry, fn func() float64) {
	r.GaugeFunc("queue_depth", "", nil, fn)
}

// Hot-path registration: every call takes the registry lock.

func observe(r *obs.Registry, v float64) {
	r.Histogram("hot_latency_seconds", "", obs.LatencyBuckets, nil).Observe(v) // want `obs metric registered outside an init path \(in observe\)`
}

func record(r *obs.Registry) {
	c := r.Counter("hot_total", "", nil) // want `obs metric registered outside an init path \(in record\)`
	c.Inc()
}

// Duplicate registration of one family from two sites.

func newDup(r *obs.Registry) (*obs.Counter, *obs.Counter) {
	a := r.Counter("dup_total", "", nil)
	b := r.Counter("dup_total", "", nil) // want `obs metric "dup_total" is also registered at`
	return a, b
}

// Updates on existing handles are always fine.

func hot() {
	pkgCounter.Inc()
}
