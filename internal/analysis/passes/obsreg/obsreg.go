// Package obsreg guards the internal/obs registration discipline: metric
// families are registered once, from init paths, and updated lock-free
// afterwards.
//
// Registry.Counter/Gauge/GaugeFunc/Histogram take the registry mutex and
// are get-or-create: calling them on a hot path turns every observation
// into a lock acquisition, and registering the same name from two call
// sites hides a type-mismatch panic (obs.lookup) until runtime. So:
// registration calls may only appear in init paths (package-level var
// initializers, init functions, or constructors matching
// -obsreg.initpaths), and a metric name literal may appear in only one
// registration call per package.
package obsreg

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsreg",
	Doc: "report obs metrics registered twice or outside init paths\n\n" +
		"Registration (Registry.Counter/Gauge/GaugeFunc/Histogram) locks the\n" +
		"registry; do it once, from an init path, and keep hot paths lock-free.",
	Run: run,
}

var (
	obsPkg    string
	initPaths string
)

func init() {
	Analyzer.Flags.StringVar(&obsPkg, "pkg", "spotfi/internal/obs",
		"import path of the metrics package whose Registry is guarded")
	Analyzer.Flags.StringVar(&initPaths, "initpaths", `^(init$|Init|New|new|Register|register)`,
		"regexp of function names considered init paths for metric registration")
}

var registerMethods = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "Histogram": true,
}

func run(pass *analysis.Pass) (any, error) {
	initRe, err := regexp.Compile(initPaths)
	if err != nil {
		return nil, err
	}

	type site struct {
		pos  ast.Node
		name string // metric name if a string constant, else ""
	}
	var sites []site

	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		funcs := passutil.Funcs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegistration(pass, call) {
				return true
			}
			s := site{pos: call}
			if len(call.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					s.name = constant.StringVal(tv.Value)
				}
			}
			sites = append(sites, s)

			if fd := funcs.Lookup(call); fd != nil && !initRe.MatchString(fd.Name.Name) {
				pass.Reportf(call.Pos(),
					"obs metric registered outside an init path (in %s): registration locks the registry; hoist it into a constructor matching -obsreg.initpaths",
					fd.Name.Name)
			}
			return true
		})
	}

	// One registration call per metric name per package.
	byName := make(map[string][]site)
	for _, s := range sites {
		if s.name != "" {
			byName[s.name] = append(byName[s.name], s)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dup := byName[name]
		if len(dup) < 2 {
			continue
		}
		first := pass.Fset.Position(dup[0].pos.Pos())
		for _, s := range dup[1:] {
			pass.Reportf(s.pos.Pos(),
				"obs metric %q is also registered at %s; register each family once and share the returned handle", name, first)
		}
	}
	return nil, nil
}

// isRegistration reports whether call invokes a registration method on the
// guarded package's Registry type.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := passutil.Callee(pass.TypesInfo, call)
	if fn == nil || !registerMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == obsPkg
}
