// Package multichecker is the driver behind cmd/spotfi-lint. It runs a
// set of analyzers in two modes:
//
//   - standalone: `spotfi-lint [flags] ./...` loads packages itself (see
//     internal/analysis/load) and prints findings to stdout, exiting 3 if
//     any survive;
//   - unitchecker: when cmd/go invokes it via `go vet -vettool=...`, the
//     single *.cfg argument selects the vet driver protocol — answer
//     -V=full with a version line, type-check from the export data cmd/go
//     hands over, write the (empty) facts file it expects, and report to
//     stderr.
package multichecker

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime/debug"
	"strings"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/checker"
	"spotfi/internal/analysis/load"
)

// Exit codes, matching the x/tools drivers closely enough for CI use.
const (
	exitClean    = 0
	exitError    = 1
	exitVetDiags = 2 // unitchecker mode: findings (go vet relays them)
	exitDiags    = 3 // standalone mode: findings
)

// Main runs the driver with os.Args and returns the process exit code.
func Main(analyzers []*analysis.Analyzer) int {
	if err := analysis.Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}

	fs := flag.NewFlagSet("spotfi-lint", flag.ExitOnError)
	fs.Usage = func() { usage(fs, analyzers) }
	printVersion := fs.String("V", "", "print version information ('full' is used by cmd/go)")
	printFlags := fs.Bool("flags", false, "print flags as JSON (used by cmd/go to plan the vet invocation)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per line for each diagnostic (file, line, col, analyzer, message, suppressed)")
	allowsMode := fs.Bool("allows", false, "audit //lint:allow comments: list each with its analyzer, reason, and whether it suppressed anything; exit nonzero if any is stale")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	fs.Parse(os.Args[1:]) //lint:allow errdrop ExitOnError: Parse cannot return an error

	if *printVersion != "" {
		// cmd/go keys its vet result cache on this line; include the build
		// ID so edited analyzers invalidate stale results.
		fmt.Printf("spotfi-lint version %s\n", buildVersion())
		return exitClean
	}
	if *printFlags {
		return describeFlags(fs)
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], active, *jsonOut)
	}
	return standalone(args, active, *jsonOut, *allowsMode)
}

// describeFlags answers cmd/go's `vettool -flags` probe: a JSON array of
// {Name, Bool, Usage} for every flag the tool accepts.
func describeFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	os.Stdout.Write(data) //lint:allow errdrop os.Stdout writes have no recovery path here
	return exitClean
}

func usage(fs *flag.FlagSet, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(fs.Output(), "spotfi-lint: static checks for the SpotFi pipeline's DSP and concurrency invariants\n\n")
	fmt.Fprintf(fs.Output(), "usage: spotfi-lint [flags] [packages]\n       go vet -vettool=$(command -v spotfi-lint) [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, doc)
	}
	fmt.Fprintf(fs.Output(), "\nflags:\n")
	fs.PrintDefaults()
}

func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut, allowsMode bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	pkgs, err := load.Packages(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.PkgPath, terr)
			broken = true
		}
	}
	if broken {
		return exitError
	}
	res, err := checker.RunDetail(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	if allowsMode {
		return printAllows(os.Stdout, cwd, res.Allows, jsonOut)
	}
	if jsonOut {
		if printJSON(os.Stdout, cwd, res) > 0 {
			return exitDiags
		}
		return exitClean
	}
	if checker.Print(os.Stdout, cwd, res.Findings) > 0 {
		return exitDiags
	}
	return exitClean
}

// jsonDiag is the -json wire format: one object per line, findings and
// suppressed diagnostics alike, distinguished by the suppressed field.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// printJSON writes every diagnostic of the run as JSON lines and returns
// the number of surviving (non-suppressed) findings.
func printJSON(w io.Writer, dir string, res *checker.Result) int {
	enc := json.NewEncoder(w)
	emit := func(f checker.Finding, suppressed bool) {
		enc.Encode(jsonDiag{ //lint:allow errdrop encoding a flat struct of strings and ints cannot fail
			File:       checker.RelPath(dir, f.Pos.Filename),
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: suppressed,
		})
	}
	for _, f := range res.Findings {
		emit(f, false)
	}
	for _, f := range res.Suppressed {
		emit(f, true)
	}
	return len(res.Findings)
}

// printAllows renders the -allows audit: every //lint:allow comment seen,
// with whether it suppressed anything this run. Stale comments — unused
// allows whose analyzer was in the run — exit nonzero so the audit gates
// like a normal run; "inert" marks an allow for an analyzer that was not
// in the run, which cannot be judged and does not fail the audit.
func printAllows(w io.Writer, dir string, allows []checker.Allow, jsonOut bool) int {
	type jsonAllow struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
		Used     bool   `json:"used"`
		Stale    bool   `json:"stale"`
	}
	enc := json.NewEncoder(w)
	stale := 0
	for _, al := range allows {
		if al.Stale {
			stale++
		}
		file := checker.RelPath(dir, al.Pos.Filename)
		if jsonOut {
			enc.Encode(jsonAllow{file, al.Pos.Line, al.Analyzer, al.Reason, al.Used, al.Stale}) //lint:allow errdrop encoding a flat struct of strings and ints cannot fail
			continue
		}
		state := "used "
		switch {
		case al.Stale:
			state = "STALE"
		case !al.Used:
			state = "inert"
		}
		fmt.Fprintf(w, "%s:%d: %s [%s] %s\n", file, al.Pos.Line, state, al.Analyzer, al.Reason)
	}
	if stale > 0 {
		return exitDiags
	}
	return exitClean
}

// vetConfig mirrors the JSON cmd/go writes for vet tools (see
// cmd/go/internal/work's vet action); only the fields we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spotfi-lint: parsing %s: %v\n", cfgFile, err)
		return exitError
	}

	fset := token.NewFileSet()
	pkg := &load.Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, GoFiles: cfg.GoFiles}
	for _, name := range cfg.GoFiles {
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailure(cfg, err)
		}
		pkg.Syntax = append(pkg.Syntax, file)
	}

	pkg.TypesInfo = load.NewInfo()
	conf := types.Config{
		Importer: load.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap),
	}
	if lang := version.Lang(cfg.GoVersion); lang != "" {
		conf.GoVersion = lang
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, pkg.Syntax, pkg.TypesInfo)
	if err != nil {
		return typecheckFailure(cfg, err)
	}
	pkg.Types = tpkg

	// Seed the fact store from the vetx files cmd/go recorded for this
	// package's dependencies — each file transitively carries its own
	// dependencies' facts, so one level of import suffices.
	facts := analysis.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitError
		}
		if err := facts.Import(data, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "spotfi-lint: importing facts from %s: %v\n", vetx, err)
			return exitError
		}
	}

	res, err := checker.RunDetailFacts(analyzers, []*load.Package{pkg}, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitError
	}

	// cmd/go expects the vetx output to exist even when no facts were
	// recorded; dependents read it back through PackageVetx above.
	if cfg.VetxOutput != "" {
		data, err := facts.Export()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitError
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}

	if jsonOut {
		if printJSON(os.Stderr, cfg.Dir, res) > 0 {
			return exitVetDiags
		}
		return exitClean
	}
	if checker.Print(os.Stderr, cfg.Dir, res.Findings) > 0 {
		return exitVetDiags
	}
	return exitClean
}

func typecheckFailure(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return exitClean
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
	return exitError
}

// buildVersion derives a cache-busting version token from the build info.
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	if info.Main.Sum != "" {
		return info.Main.Sum
	}
	return "devel-" + info.GoVersion
}
