package multichecker_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles cmd/spotfi-lint into dir and returns the binary path.
func buildLint(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "spotfi-lint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "spotfi/cmd/spotfi-lint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spotfi-lint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// writeModule lays out a throwaway module so `go vet` has something to
// drive the vettool over without touching the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestVettoolProtocol exercises the full cmd/go handshake: the -V=full and
// -flags probes, the *.cfg unitchecker invocation, and diagnostic relay.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes cmd/go")
	}
	bin := buildLint(t, t.TempDir())

	t.Run("FlagsProbe", func(t *testing.T) {
		out, err := exec.Command(bin, "-flags").Output()
		if err != nil {
			t.Fatalf("-flags probe failed: %v", err)
		}
		for _, want := range []string{`"Name": "floateq"`, `"Name": "gospawn.allow"`} {
			if !strings.Contains(string(out), want) {
				t.Errorf("-flags output missing %s:\n%s", want, out)
			}
		}
	})

	t.Run("VersionProbe", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full probe failed: %v", err)
		}
		if !strings.HasPrefix(string(out), "spotfi-lint version ") {
			t.Errorf("unexpected -V=full output: %q", out)
		}
	})

	t.Run("Dirty", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func same(a, b float64) bool { return a == b }
`,
		})
		out, err := runVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet succeeded on a file with a floateq violation:\n%s", out)
		}
		if !strings.Contains(out, "floateq") || !strings.Contains(out, "eq.go") {
			t.Errorf("diagnostic not relayed by go vet:\n%s", out)
		}
	})

	t.Run("Clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

import "math"

func same(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})

	t.Run("Suppressed", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func same(a, b float64) bool {
	return a == b //lint:allow floateq exact bit-pattern comparison is intended
}
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet failed on a suppressed finding: %v\n%s", err, out)
		}
	})

	// Facts must cross package boundaries through the vetx files cmd/go
	// shuttles between vet invocations: inner's //spotfi:noalloc annotation
	// is recorded as a fact when inner is vetted, and the caller package's
	// noalloc pass must see it — otherwise every cross-package call from an
	// annotated function would be flagged.
	t.Run("CrossPackageFacts", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"inner/inner.go": `package inner

//spotfi:noalloc
func Fast(x int) int { return x * 2 }

func Slow(n int) []int { return make([]int, n) }
`,
			"hot.go": `package vetx

import "vetx/inner"

//spotfi:noalloc
func hot(x int) int { return inner.Fast(x) }

var _ = hot
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet flagged a cross-package call to an annotated function: %v\n%s", err, out)
		}
	})

	// go vet analyzes test variants, so _test.go files reach the checker.
	// Analyzers skip them (passutil.IsTestFile), meaning an allow there
	// can never be used — it must be exempt from stale reporting, not a
	// guaranteed failure.
	t.Run("TestFileAllowsExempt", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func scale(a float64) float64 { return a * 2 }
`,
			"eq_test.go": `package vetx

func almostEq(a, b float64) bool {
	return a == b //lint:allow floateq test helper compares exact bits
}
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet flagged a //lint:allow in a _test.go file as stale: %v\n%s", err, out)
		}
	})

	t.Run("CrossPackageDirty", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"inner/inner.go": `package inner

func Slow(n int) []int { return make([]int, n) }
`,
			"hot.go": `package vetx

import "vetx/inner"

//spotfi:noalloc
func hot(n int) []int { return inner.Slow(n) }

var _ = hot
`,
		})
		out, err := runVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet passed a noalloc function calling an un-annotated cross-package function:\n%s", out)
		}
		if !strings.Contains(out, "noalloc") || !strings.Contains(out, "Slow") {
			t.Errorf("expected a noalloc diagnostic naming Slow:\n%s", out)
		}
	})
}

// runLint invokes the standalone (non-vettool) driver in dir.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running spotfi-lint: %v\n%s", err, buf.String())
	}
	return buf.String(), code
}

// TestStandaloneOutput exercises the -json and -allows modes of the
// standalone driver.
func TestStandaloneOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes cmd/go")
	}
	bin := buildLint(t, t.TempDir())
	dir := writeModule(t, map[string]string{
		"go.mod": "module vetx\n\ngo 1.24\n",
		"eq.go": `package vetx

func same(a, b float64) bool { return a == b }

func close(a, b float64) bool {
	return a == b //lint:allow floateq exact comparison intended here
}
`,
	})

	t.Run("JSON", func(t *testing.T) {
		out, code := runLint(t, bin, dir, "-json", "./...")
		if code != 3 {
			t.Fatalf("exit code = %d, want 3 (findings)\n%s", code, out)
		}
		var sawFinding, sawSuppressed bool
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			var d struct {
				File       string `json:"file"`
				Line       int    `json:"line"`
				Analyzer   string `json:"analyzer"`
				Message    string `json:"message"`
				Suppressed bool   `json:"suppressed"`
			}
			if err := json.Unmarshal([]byte(line), &d); err != nil {
				t.Fatalf("non-JSON output line %q: %v", line, err)
			}
			if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
				t.Errorf("incomplete diagnostic: %q", line)
			}
			if d.Analyzer == "floateq" && !d.Suppressed {
				sawFinding = true
			}
			if d.Analyzer == "floateq" && d.Suppressed {
				sawSuppressed = true
			}
		}
		if !sawFinding || !sawSuppressed {
			t.Errorf("want one surviving and one suppressed floateq diagnostic, got:\n%s", out)
		}
	})

	t.Run("Allows", func(t *testing.T) {
		out, code := runLint(t, bin, dir, "-allows", "./...")
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (audit mode)\n%s", code, out)
		}
		if !strings.Contains(out, "used") || !strings.Contains(out, "exact comparison intended here") {
			t.Errorf("audit output missing the used allow:\n%s", out)
		}
	})

	t.Run("AllowsJSON", func(t *testing.T) {
		out, code := runLint(t, bin, dir, "-allows", "-json", "./...")
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (audit mode)\n%s", code, out)
		}
		var al struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
			Used     bool   `json:"used"`
			Stale    bool   `json:"stale"`
		}
		line, _, _ := strings.Cut(strings.TrimSpace(out), "\n")
		if err := json.Unmarshal([]byte(line), &al); err != nil {
			t.Fatalf("non-JSON allows line %q: %v", line, err)
		}
		if al.Analyzer != "floateq" || !al.Used || al.Reason == "" || al.Stale {
			t.Errorf("unexpected allow record: %+v", al)
		}
	})

	// A stale allow must fail the audit, not just be listed — the CI
	// suppression-audit step gates on this exit code.
	t.Run("AllowsStaleGate", func(t *testing.T) {
		staleDir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func scale(a float64) float64 {
	return a * 2 //lint:allow floateq nothing on this line compares floats
}
`,
		})
		out, code := runLint(t, bin, staleDir, "-allows", "./...")
		if code != 3 {
			t.Fatalf("exit code = %d, want 3 (stale allow must gate)\n%s", code, out)
		}
		if !strings.Contains(out, "STALE") {
			t.Errorf("audit output does not mark the stale allow:\n%s", out)
		}
	})
}
