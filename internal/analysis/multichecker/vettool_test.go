package multichecker_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles cmd/spotfi-lint into dir and returns the binary path.
func buildLint(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "spotfi-lint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "spotfi/cmd/spotfi-lint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spotfi-lint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// writeModule lays out a throwaway module so `go vet` has something to
// drive the vettool over without touching the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestVettoolProtocol exercises the full cmd/go handshake: the -V=full and
// -flags probes, the *.cfg unitchecker invocation, and diagnostic relay.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes cmd/go")
	}
	bin := buildLint(t, t.TempDir())

	t.Run("FlagsProbe", func(t *testing.T) {
		out, err := exec.Command(bin, "-flags").Output()
		if err != nil {
			t.Fatalf("-flags probe failed: %v", err)
		}
		for _, want := range []string{`"Name": "floateq"`, `"Name": "gospawn.allow"`} {
			if !strings.Contains(string(out), want) {
				t.Errorf("-flags output missing %s:\n%s", want, out)
			}
		}
	})

	t.Run("VersionProbe", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full probe failed: %v", err)
		}
		if !strings.HasPrefix(string(out), "spotfi-lint version ") {
			t.Errorf("unexpected -V=full output: %q", out)
		}
	})

	t.Run("Dirty", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func same(a, b float64) bool { return a == b }
`,
		})
		out, err := runVet(t, bin, dir)
		if err == nil {
			t.Fatalf("go vet succeeded on a file with a floateq violation:\n%s", out)
		}
		if !strings.Contains(out, "floateq") || !strings.Contains(out, "eq.go") {
			t.Errorf("diagnostic not relayed by go vet:\n%s", out)
		}
	})

	t.Run("Clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

import "math"

func same(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})

	t.Run("Suppressed", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module vetx\n\ngo 1.24\n",
			"eq.go": `package vetx

func same(a, b float64) bool {
	return a == b //lint:allow floateq exact bit-pattern comparison is intended
}
`,
		})
		if out, err := runVet(t, bin, dir); err != nil {
			t.Fatalf("go vet failed on a suppressed finding: %v\n%s", err, out)
		}
	})
}
