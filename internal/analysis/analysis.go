// Package analysis defines the analyzer plumbing behind spotfi-lint: a
// deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API. The container this repo grows in has
// no module proxy access, so rather than vendoring x/tools we re-implement
// the four concepts the suite needs — Analyzer, Pass, Diagnostic, and a
// driver (see the sibling checker, load, and multichecker packages) — with
// the same field names and semantics. If the real dependency ever becomes
// available, analyzers port by changing one import path.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a doc string, optional flags,
// and a Run function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags
	// (-<name>.<flag>), and //lint:allow comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's help text. The first line is a one-phrase
	// summary; the rest elaborates on the invariant and its motivation.
	Doc string

	// Flags holds analyzer-specific flags. Drivers expose each flag f as
	// -<Name>.<f> on the command line.
	Flags flag.FlagSet

	// Run applies the analyzer to one package and reports diagnostics
	// through pass.Report. The result value is unused by this driver but
	// kept for x/tools API parity.
	Run func(*Pass) (any, error)

	// FactType, when non-nil, returns a fresh zero fact value (a pointer
	// to a JSON-decodable struct) for deserializing this analyzer's facts
	// from a dependency's fact file in vettool mode. Analyzers that export
	// no facts leave it nil.
	FactType func() any
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an Analyzer.Run and collects its
// diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token positions; shared by all files of the package.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for expressions and identifiers
	// in Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills this in.
	Report func(Diagnostic)

	// Facts is the module-local cross-package fact store (see Facts).
	// Drivers analyze packages in dependency order, so facts recorded
	// while analyzing a dependency are visible here. Never nil when run
	// through the checker, the analysistest harness, or the vettool
	// driver.
	Facts *Facts
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}

// Validate checks that the analyzers are well formed (non-empty unique
// names, a Run function) before a driver runs them.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer")
		}
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %s has no Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
