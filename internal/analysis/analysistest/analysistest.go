// Package analysistest runs a single analyzer over fixture packages and
// checks its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<dir>/ as ordinary Go files. A line
// expecting diagnostics carries a trailing comment of the form
//
//	x += step // want `regexp` `another`
//
// with one double- or back-quoted regexp per expected diagnostic on that
// line. Unmatched expectations and unexpected diagnostics both fail the
// test. Suppression comments (//lint:allow) are NOT honored here — the
// harness tests analyzers, not the driver.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/checker"
	"spotfi/internal/analysis/load"
)

// TestData returns the absolute path of the caller package's testdata
// directory (tests run with the package directory as cwd).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run applies a to each fixture package testdata/src/<dir> and reports
// expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) { runOne(t, filepath.Join(testdata, "src", dir), a) })
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir)
	fset, files := pkg.Fset, pkg.Syntax

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Facts:     analysis.NewFacts(),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	checkExpectations(t, fset, files, diags)
}

// RunSuppressed runs a through the checker driver — which, unlike Run,
// honors //lint:allow comments — over each fixture package and asserts
// that every diagnostic is suppressed and every suppression is used.
// It is the harness for an analyzer's suppressed-case fixtures: the code
// violates the invariant, the allows absorb it, and a stale allow (one
// covering nothing) still fails.
func RunSuppressed(t *testing.T, testdata string, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) { runSuppressedOne(t, filepath.Join(testdata, "src", dir), a) })
	}
}

func runSuppressedOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir)
	res, err := checker.RunDetail([]*analysis.Analyzer{a}, []*load.Package{pkg})
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	for _, f := range res.Findings {
		t.Errorf("finding survived its //lint:allow: %s", f)
	}
	if len(res.Suppressed) == 0 {
		t.Errorf("fixture %s suppressed nothing: it does not exercise the analyzer", dir)
	}
	for _, al := range res.Allows {
		if !al.Used {
			t.Errorf("%s: //lint:allow %s suppresses nothing in this fixture", al.Pos, al.Analyzer)
		}
	}
}

// loadFixture parses and type-checks one fixture package directory.
func loadFixture(t *testing.T, dir string) *load.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	pkg := &load.Package{
		PkgPath: filepath.Base(dir),
		Dir:     dir,
		Fset:    fset,
		Syntax:  files,
	}
	pkg.TypesInfo = load.NewInfo()
	conf := types.Config{Importer: load.NewExportImporter(fset, exportData(t, dir, files), nil)}
	tpkg, err := conf.Check(pkg.PkgPath, fset, files, pkg.TypesInfo)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg.Types = tpkg
	return pkg
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	pos token.Position // of the comment, identifying file and line
	re  *regexp.Regexp
	met bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parsePatterns(text)
				if err != nil {
					t.Errorf("%s: bad // want: %v", pos, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad // want regexp: %v", pos, err)
						continue
					}
					wants = append(wants, &expectation{pos: pos, re: re})
				}
			}
		}
	}

diagLoop:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.met && w.pos.Filename == pos.Filename && w.pos.Line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				continue diagLoop
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}

// parsePatterns splits a sequence of double- or back-quoted regexps into
// unquoted pattern strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("pattern must be quoted with \" or `: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern: %q", s)
		}
		raw := s[:end+2]
		p, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", raw, err)
		}
		out = append(out, p)
		s = s[end+2:]
	}
}

// exportData compiles the fixtures' imports via `go list -export` and
// returns importPath → export-data file. Fixtures may import anything the
// module can: stdlib and spotfi packages alike.
func exportData(t *testing.T, dir string, files []*ast.File) map[string]string {
	t.Helper()
	seen := make(map[string]bool)
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return nil
	}
	sort.Strings(paths)
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export,ImportMap"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir // inside the module, so module-local imports resolve
	out, err := cmd.Output()
	if err != nil {
		msg := ""
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		t.Fatalf("go list %s: %v\n%s", strings.Join(paths, " "), err, msg)
	}
	exports, err := load.ParseExportList(out)
	if err != nil {
		t.Fatal(err)
	}
	return exports
}
