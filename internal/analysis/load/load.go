// Package load type-checks Go packages for analysis without any
// dependency beyond the go toolchain. It shells out to
// `go list -export -deps -json`, which compiles dependencies into the
// build cache and reports their export-data files, then parses the target
// packages from source and type-checks them against that export data with
// the standard gc importer — the same strategy cmd/vet's unitchecker uses,
// and one that works fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string // absolute paths, in go list order

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors holds soft type-check errors. Analyzers still run on a
	// package with errors, but drivers should surface them.
	TypeErrors []error

	// FactsOnly marks a dependency loaded solely so analyzers can record
	// facts (annotations, escape summaries) its dependents consume. The
	// checker runs analyzers over it but discards its diagnostics: the
	// user did not select it, so its findings are not this run's business.
	FactsOnly bool
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads, parses, and type-checks the packages matched by
// patterns (e.g. "./..."), resolved relative to dir, plus their
// non-stdlib dependencies as FactsOnly packages (dependencies first) so
// cross-package facts resolve even when patterns select a subtree. Test
// files are not loaded, matching `go build` package contents.
func Packages(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPackage
	factsOnly := make(map[string]bool)
	exports := make(map[string]string)
	if err := decodeList(stdout.Bytes(), func(lp *listPackage) {
		recordExport(exports, lp)
		if lp.DepOnly && (lp.Standard || len(lp.CgoFiles) > 0) {
			return // stdlib and cgo deps contribute export data only
		}
		if lp.DepOnly {
			factsOnly[lp.ImportPath] = true
		}
		targets = append(targets, lp)
	}); err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, lp := range targets {
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = factsOnly[lp.ImportPath]
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	pkg := &Package{
		PkgPath: lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    fset,
	}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", lp.ImportPath, err)
		}
		pkg.Syntax = append(pkg.Syntax, file)
	}

	pkg.TypesInfo = NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Soft errors are collected via conf.Error; the returned error would
	// repeat the first of them, so it is deliberately dropped.
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.TypesInfo) //lint:allow errdrop soft type errors collected via conf.Error
	pkg.Types = tpkg
	return pkg, nil
}

// ParseExportList extracts importPath → export-data-file pairs from
// `go list -export -json` output. Used by analysistest, which runs go
// list itself with a fixture-specific working directory.
func ParseExportList(data []byte) (map[string]string, error) {
	exports := make(map[string]string)
	if err := decodeList(data, func(lp *listPackage) { recordExport(exports, lp) }); err != nil {
		return nil, err
	}
	return exports, nil
}

// decodeList streams the concatenated JSON objects `go list -json` emits.
func decodeList(data []byte, visit func(*listPackage)) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		visit(lp)
	}
}

// recordExport indexes a package's export data under its import path and,
// for packages compiled under a vendor-resolved path (stdlib vendoring),
// under the source-level path too.
func recordExport(exports map[string]string, lp *listPackage) {
	if lp.Export == "" {
		return
	}
	exports[lp.ImportPath] = lp.Export
	for src, resolved := range lp.ImportMap {
		if resolved == lp.ImportPath {
			exports[src] = lp.Export
		}
	}
}

// NewInfo returns a types.Info with all maps analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// NewExportImporter returns a types.Importer that resolves imports from gc
// export-data files: importPath → file. importMap, which may be nil,
// rewrites source-level import paths (vendoring) before lookup.
func NewExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	if importMap == nil {
		return newExportImporter(fset, exports)
	}
	merged := make(map[string]string, len(exports))
	for k, v := range exports {
		merged[k] = v
	}
	for src, resolved := range importMap {
		if f, ok := exports[resolved]; ok {
			merged[src] = f
		}
	}
	return newExportImporter(fset, merged)
}

func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

type exportImporter struct{ gc types.Importer }

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}
