package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Facts is a module-local, cross-package fact store: analyzers record
// conclusions about package-level objects (functions, types) while
// analyzing the package that declares them, and read facts about callees
// when analyzing dependents. Drivers visit packages in dependency order
// (go list -deps emits dependencies first), which makes callee→caller
// propagation a single forward pass.
//
// In vettool mode, where each package is analyzed by a separate process,
// facts ride the vetx files cmd/go threads through the build graph: see
// Export and Import. Facts are keyed by a stable textual object key (see
// ObjectKey), so an object observed through export data resolves to the
// same fact recorded when its declaring package was analyzed from source.
type Facts struct {
	entries map[factKey]factEntry
}

type factKey struct {
	analyzer string
	object   string
}

type factEntry struct {
	pkgPath string
	fact    any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{entries: make(map[factKey]factEntry)}
}

// Put records analyzer's fact about obj, replacing any previous one.
// Facts about objects without a package (builtins, nil) are dropped.
func (f *Facts) Put(analyzer string, obj types.Object, fact any) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	f.entries[factKey{analyzer, key}] = factEntry{pkgPath: obj.Pkg().Path(), fact: fact}
}

// Get returns analyzer's fact about obj, if any.
func (f *Facts) Get(analyzer string, obj types.Object) (any, bool) {
	e, ok := f.entries[factKey{analyzer, ObjectKey(obj)}]
	if !ok {
		return nil, false
	}
	return e.fact, true
}

// ObjectKey returns a stable textual identity for a package-level object:
// "pkgpath.Name" for functions, types, and vars, "pkgpath.(Recv).Name" or
// "pkgpath.(*Recv).Name" for methods. It is identical whether the object
// was type-checked from source or resolved through gc export data, which
// is what lets facts cross package and process boundaries. Objects with no
// package (builtins) yield "".
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			star := ""
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				star = "*"
			}
			if named, ok := t.(*types.Named); ok {
				return obj.Pkg().Path() + ".(" + star + named.Obj().Name() + ")." + obj.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// wireFact is the serialized form of one fact (vetx payload line).
type wireFact struct {
	Analyzer string          `json:"a"`
	Object   string          `json:"o"`
	Pkg      string          `json:"p"`
	Fact     json.RawMessage `json:"f"`
}

// Export serializes the whole store — imported facts included, so a
// package's fact file transitively carries its dependencies' facts — as
// deterministic JSON lines suitable for a vetx file.
func (f *Facts) Export() ([]byte, error) {
	keys := make([]factKey, 0, len(f.entries))
	for k := range f.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].analyzer != keys[j].analyzer {
			return keys[i].analyzer < keys[j].analyzer
		}
		return keys[i].object < keys[j].object
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, k := range keys {
		e := f.entries[k]
		raw, err := json.Marshal(e.fact)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding fact %s/%s: %v", k.analyzer, k.object, err)
		}
		if err := enc.Encode(wireFact{Analyzer: k.analyzer, Object: k.object, Pkg: e.pkgPath, Fact: raw}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Import merges facts serialized by Export, decoding each analyzer's
// payloads with its FactType. Facts for unknown analyzers (or analyzers
// without a FactType) are skipped; existing entries are not overwritten,
// so re-importing shared transitive facts is idempotent.
func (f *Facts) Import(data []byte, analyzers []*Analyzer) error {
	if len(data) == 0 {
		return nil
	}
	types := make(map[string]func() any)
	for _, a := range analyzers {
		if a.FactType != nil {
			types[a.Name] = a.FactType
		}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var w wireFact
		if err := dec.Decode(&w); err != nil {
			return fmt.Errorf("analysis: decoding fact file: %v", err)
		}
		mk, ok := types[w.Analyzer]
		if !ok {
			continue
		}
		key := factKey{w.Analyzer, w.Object}
		if _, exists := f.entries[key]; exists {
			continue
		}
		fact := mk()
		if err := json.Unmarshal(w.Fact, fact); err != nil {
			return fmt.Errorf("analysis: decoding %s fact for %s: %v", w.Analyzer, w.Object, err)
		}
		f.entries[key] = factEntry{pkgPath: w.Pkg, fact: fact}
	}
	return nil
}
