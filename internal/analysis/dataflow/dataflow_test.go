package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

import "sync"

var g *int
var sink any

type box struct{ p *int }

func ret(p *int) *int { return p }
func store(p *int)    { g = p }
func send(p *int, ch chan *int) { ch <- p }
func spawn(p *int) { go func() { _ = *p }() }
func local(p *int) int { q := p; return *q }
func indirect(p *int) { store(p) }
func viaret(p *int)   { g = ret(p) }
func unknownFn(p *int, fn func(*int)) { fn(p) }
func container(p *int) *box {
	b := &box{}
	b.p = p
	return b
}
func copyOut(p *int) int { return *p }
func boxIface(p *int) { sink = p }
func namedRet(p *int) (r *int) { r = p; return }
func selfAppend(buf []int, v int) []int { buf = append(buf, v); return buf }
func viaSlice(p *int) *int {
	var s []*int
	s = append(s, p)
	return s[0]
}
func locked(p *int, mu *sync.Mutex) { mu.Lock(); defer mu.Unlock(); *p = 1 }
`

func summarize(t *testing.T) (map[string]*Summary, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	s := &Summarizer{Info: info}
	byName := make(map[string]*Summary)
	for fn, sum := range s.Package([]*ast.File{file}) {
		byName[fn.Name()] = sum
	}
	return byName, info
}

func TestSummaries(t *testing.T) {
	sums, _ := summarize(t)
	want := map[string]Escape{
		"ret":        EscReturn,
		"store":      EscGlobal,
		"send":       EscChannel,
		"spawn":      EscGoroutine,
		"local":      EscNone,
		"indirect":   EscGlobal, // through the same-package call to store
		"viaret":     EscGlobal, // ret's result derives from p, then hits g
		"unknownFn":  EscHeap,   // handed to a func value we know nothing about
		"container":  EscReturn, // stored into a struct that is returned
		"copyOut":    EscNone,   // a dereferenced int copy carries no reference
		"boxIface":   EscGlobal,
		"namedRet":   EscReturn, // naked return of a named result
		"selfAppend": EscReturn,
		"viaSlice":   EscReturn,
	}
	for name, esc := range want {
		sum, ok := sums[name]
		if !ok {
			t.Fatalf("no summary for %s", name)
		}
		if got := sum.Param(0); got != esc {
			t.Errorf("%s: param 0 escape = %v (%s), want %v (%s)", name, got, got, esc, esc)
		}
	}

	// Calling a method on a tainted value is a SinkCall resolved through
	// the callee; sync.Mutex Lock/Unlock have no summary, so the mutex
	// param conservatively escapes to the heap — but p itself must not.
	if got := sums["locked"].Param(0); got != EscNone {
		t.Errorf("locked: p escape = %s, want none", got)
	}
	if got := sums["locked"].Param(1); got&EscHeap == 0 {
		t.Errorf("locked: mu escape = %s, want heap (unknown callee)", got)
	}
}
