package dataflow

import (
	"go/ast"
	"go/types"
)

// A Summary records how a function treats its pointerish inputs: one
// escape mask for the receiver and one per parameter. EscNone means the
// input provably stays inside the callee (or flows only into its results,
// which callers track as call-result derivation via EscReturn).
//
// The zero Summary (no receiver escape, no parameters) describes a
// function that retains nothing — which is also the right meaning for
// its JSON round-trip through the fact store.
type Summary struct {
	Recv   Escape   `json:"recv,omitempty"`
	Params []Escape `json:"params,omitempty"`
}

// Param returns the escape mask of parameter i, clamping past-the-end
// indices to the last parameter (variadic calls).
func (s *Summary) Param(i int) Escape {
	if len(s.Params) == 0 {
		return EscHeap // summary shape mismatch: assume the worst
	}
	if i >= len(s.Params) {
		i = len(s.Params) - 1
	}
	return s.Params[i]
}

// Pure reports whether no input escapes at all.
func (s *Summary) Pure() bool {
	if s.Recv != EscNone {
		return false
	}
	for _, p := range s.Params {
		if p != EscNone {
			return false
		}
	}
	return true
}

// A Summarizer computes escape summaries for every function declared in a
// package.
type Summarizer struct {
	Info *types.Info

	// External resolves the summary of a function declared outside the
	// summarized files — typically by consulting a cross-package fact.
	// A nil result means unknown, which makes arguments passed to the
	// function EscHeap.
	External func(fn *types.Func) *Summary
}

// Package computes a summary for every function with a body in files,
// iterating to fixpoint so same-package calls (including mutual
// recursion) resolve precisely. Summaries start optimistic (EscNone) and
// grow monotonically, so the iteration terminates.
func (s *Summarizer) Package(files []*ast.File) map[*types.Func]*Summary {
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	sums := make(map[*types.Func]*Summary)
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := s.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fnDecl{fn, fd})
			sig := fn.Type().(*types.Signature)
			sum := &Summary{Params: make([]Escape, sig.Params().Len())}
			sums[fn] = sum
		}
	}

	lookup := func(fn *types.Func) *Summary {
		if fn == nil {
			return nil
		}
		if sum, ok := sums[fn]; ok {
			return sum
		}
		if s.External != nil {
			return s.External(fn)
		}
		return nil
	}

	tracker := &Tracker{
		Info: s.Info,
		CallResults: func(call *ast.CallExpr, fn *types.Func, recvMask uint64, argMasks []uint64) []uint64 {
			sum := lookup(fn)
			if sum == nil {
				return nil // conservative default
			}
			var m uint64
			if recvMask != 0 && sum.Recv&EscReturn != 0 {
				m |= recvMask
			}
			for i, am := range argMasks {
				if am != 0 && sum.Param(i)&EscReturn != 0 {
					m |= am
				}
			}
			sig := callSignature(s.Info, call)
			if sig == nil {
				return nil
			}
			out := make([]uint64, sig.Results().Len())
			for i := range out {
				if ResultCarries(sig.Results().At(i).Type()) {
					out[i] = m
				}
			}
			return out
		},
	}

	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if s.update(tracker, fd.fn, fd.decl, sums[fd.fn], lookup) {
				changed = true
			}
		}
	}
	return sums
}

// update recomputes one function's summary; reports whether it grew.
func (s *Summarizer) update(tracker *Tracker, fn *types.Func, decl *ast.FuncDecl, sum *Summary, lookup func(*types.Func) *Summary) bool {
	sig := fn.Type().(*types.Signature)
	roots, results := SignatureObjects(s.Info, decl)
	// Root order: receiver first (if pointerish), then pointerish params;
	// non-pointerish inputs stay in the slice as nil so indices line up.
	flow := tracker.Track(decl.Body, roots, results)

	changed := false
	fold := func(idx int, esc Escape) {
		if idx == 0 && sig.Recv() != nil {
			if sum.Recv|esc != sum.Recv {
				sum.Recv |= esc
				changed = true
			}
			return
		}
		p := idx
		if sig.Recv() != nil {
			p--
		}
		if p >= 0 && p < len(sum.Params) && sum.Params[p]|esc != sum.Params[p] {
			sum.Params[p] |= esc
			changed = true
		}
	}
	for _, sink := range flow.Sinks {
		var esc Escape
		if sink.Kind == SinkCall {
			callee, _ := flowCallee(s.Info, sink.Call)
			esc = sink.Resolve(lookup(callee))
		} else {
			esc = sink.Resolve(nil)
		}
		if esc == EscNone {
			continue
		}
		for i := range roots {
			if roots[i] != nil && sink.Mask&rootBit(i) != 0 {
				fold(i, esc)
			}
		}
	}
	return changed
}

// SignatureObjects returns the function's trackable inputs — receiver
// (if any) followed by parameters, with non-pointerish entries nil so
// indices stay aligned with the signature — and its named result objects.
func SignatureObjects(info *types.Info, decl *ast.FuncDecl) (roots, results []types.Object) {
	addFields := func(fl *ast.FieldList, out *[]types.Object, filter bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				// Unnamed input: untrackable but occupies a slot.
				if out == &roots {
					*out = append(*out, nil)
				}
				continue
			}
			for _, name := range field.Names {
				obj := info.Defs[name]
				if filter && (obj == nil || !Pointerish(obj.Type())) {
					*out = append(*out, nil)
					continue
				}
				*out = append(*out, obj)
			}
		}
	}
	addFields(decl.Recv, &roots, true)
	if decl.Type.Params != nil {
		addFields(decl.Type.Params, &roots, true)
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					results = append(results, obj)
				}
			}
		}
	}
	return roots, results
}

// flowCallee resolves a call's *types.Func, mirroring Flow.calleeOf for
// use outside a Flow.
func flowCallee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	if call == nil {
		return nil, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		_, isSel := info.Selections[fun]
		return fn, isSel && fn != nil && fn.Type().(*types.Signature).Recv() != nil
	}
	return nil, false
}
