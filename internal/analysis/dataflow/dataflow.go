// Package dataflow is the intraprocedural value-flow layer under the
// hot-path contract analyzers (noalloc, arenaescape, poolreuse). It
// answers one question cheaply: given a set of root values in a function
// (an arena receiver, a pool Get result, the function's own parameters),
// where do references derived from them go?
//
// The design is a taint lattice over types.Objects. Each root gets a bit;
// every local that a reference can flow into accumulates the union of the
// root bits that reach it (assignments, field/index/slice projections,
// address-of, conversions, composite literals, closure captures, and —
// via summaries or a conservative default — call results). A fixpoint
// over the function body makes ordering irrelevant. Afterwards a second
// walk records sinks: places a derived reference leaves the function's
// control — returns, stores to package-level variables, channel sends,
// go statements, and calls (with the argument index, so the caller can
// consult the callee's summary or a cross-package fact).
//
// Only pointerish values are tracked (pointers, slices, maps, chans,
// funcs, interfaces, and aggregates containing them): copying a float64
// out of an arena does not carry a reference, so it never taints.
//
// Summarizer builds per-function escape summaries (which parameters
// escape, and how) for a whole package at once, resolving same-package
// calls by fixpoint and cross-package calls through a pluggable External
// hook — which the analyzers back with the module-local fact store, giving
// callee→caller propagation across package boundaries.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Escape is a bitmask describing how a value leaves a function.
type Escape uint8

const (
	// EscReturn: the value flows into one of the function's results.
	EscReturn Escape = 1 << iota
	// EscGlobal: the value is stored into a package-level variable.
	EscGlobal
	// EscChannel: the value is sent on a channel.
	EscChannel
	// EscGoroutine: the value is referenced by a go statement, directly
	// or through a captured closure.
	EscGoroutine
	// EscHeap: the value is passed to a function whose behavior is
	// unknown (no summary, no fact) — assume the worst.
	EscHeap

	// EscNone: the value provably stays within the function.
	EscNone Escape = 0
)

func (e Escape) String() string {
	if e == EscNone {
		return "does not escape"
	}
	var parts []string
	if e&EscReturn != 0 {
		parts = append(parts, "returned")
	}
	if e&EscGlobal != 0 {
		parts = append(parts, "stored to a global")
	}
	if e&EscChannel != 0 {
		parts = append(parts, "sent on a channel")
	}
	if e&EscGoroutine != 0 {
		parts = append(parts, "captured by a goroutine")
	}
	if e&EscHeap != 0 {
		parts = append(parts, "passed to an unknown function")
	}
	return strings.Join(parts, ", ")
}

// SinkKind classifies where a derived reference left the function.
type SinkKind int

const (
	SinkReturn SinkKind = iota
	SinkGlobal
	SinkChannel
	SinkGoroutine
	SinkCall
)

// A Sink is one place a derived reference leaves the function's control.
type Sink struct {
	Kind SinkKind
	Pos  token.Pos
	// Mask is the union of root bits that reach this sink (bit i = the
	// i'th root passed to Track; roots past 63 share bit 63).
	Mask uint64
	// Expr is the derived expression at the sink.
	Expr ast.Expr
	// Result is the result index for SinkReturn, -1 otherwise.
	Result int
	// Call and Arg identify the call and argument index for SinkCall
	// (Arg == -1 means the method receiver).
	Call *ast.CallExpr
	Arg  int
}

// Resolve returns the escape this sink implies for the value that reached
// it, given the callee's summary for SinkCall sinks (nil = unknown). A
// callee parameter's EscReturn is masked off: the value re-enters the
// caller as a call result, which Track already follows.
func (s Sink) Resolve(sum *Summary) Escape {
	switch s.Kind {
	case SinkReturn:
		return EscReturn
	case SinkGlobal:
		return EscGlobal
	case SinkChannel:
		return EscChannel
	case SinkGoroutine:
		return EscGoroutine
	case SinkCall:
		if sum == nil {
			return EscHeap
		}
		if s.Arg < 0 {
			return sum.Recv &^ EscReturn
		}
		return sum.Param(s.Arg) &^ EscReturn
	}
	return EscNone
}

// Pointerish reports whether a value of type t can carry a reference:
// pointers, slices, maps, channels, funcs, interfaces, unsafe.Pointer,
// and structs/arrays containing any of those. Strings are excluded —
// their bytes are immutable, so they cannot alias a mutable arena.
func Pointerish(t types.Type) bool {
	return pointerish(t, 0)
}

// ResultCarries reports whether a call result of type t propagates taint
// from the call's inputs. It is Pointerish minus the predeclared error
// interface: error results carry diagnostic text about the inputs, not
// live references into them, and deriving them would mark every fallible
// call on tainted data as a leak. Named error types are still tracked —
// only the plain `error` result is exempt.
func ResultCarries(t types.Type) bool {
	if t != nil && types.Identical(t, errType) {
		return false
	}
	return Pointerish(t)
}

var errType = types.Universe.Lookup("error").Type()

func pointerish(t types.Type, depth int) bool {
	if t == nil || depth > 16 {
		return true // give up conservatively
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.Invalid
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerish(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerish(u.Elem(), depth+1)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if pointerish(u.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

// A Tracker configures the flow analysis for one type-checked package.
type Tracker struct {
	Info *types.Info

	// CallResults, when non-nil, refines which results of a call derive
	// from tainted inputs: it receives the callee (nil for calls of
	// func-typed values), the receiver's taint mask, and one mask per
	// syntactic argument, and returns one mask per result. A nil return
	// falls back to the conservative default: every pointerish result
	// gets the union of all input masks.
	CallResults func(call *ast.CallExpr, fn *types.Func, recvMask uint64, argMasks []uint64) []uint64
}

// A Flow holds the result of tracking one function body.
type Flow struct {
	tr    *Tracker
	Roots []types.Object
	mask  map[types.Object]uint64
	Sinks []Sink
}

// rootBit returns the mask bit for root index i (roots ≥ 63 share a bit).
func rootBit(i int) uint64 {
	if i > 63 {
		i = 63
	}
	return 1 << uint(i)
}

// RootsOf expands a sink mask back into the root objects it covers.
func (f *Flow) RootsOf(mask uint64) []types.Object {
	var out []types.Object
	for i, r := range f.Roots {
		if mask&rootBit(i) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Mask returns the taint mask of an expression after the fixpoint.
func (f *Flow) Mask(e ast.Expr) uint64 { return f.derived(e) }

// ObjMask returns the taint mask accumulated by an object.
func (f *Flow) ObjMask(obj types.Object) uint64 { return f.mask[obj] }

// Track runs the flow analysis over one function body. roots are the
// objects whose references are traced (each gets a mask bit, in order);
// results are the function's named result objects, if any, so naked
// returns register Return sinks. The returned Flow lists every sink a
// derived reference reached.
func (t *Tracker) Track(body *ast.BlockStmt, roots, results []types.Object) *Flow {
	f := &Flow{tr: t, Roots: roots, mask: make(map[types.Object]uint64)}
	for i, r := range roots {
		if r != nil {
			f.mask[r] |= rootBit(i)
		}
	}
	for f.propagate(body) {
	}
	f.collect(body, results)
	return f
}

// propagate performs one pass of taint propagation through assignments,
// declarations, and range statements, and reports whether anything new
// was learned.
func (f *Flow) propagate(body *ast.BlockStmt) bool {
	changed := false
	taint := func(obj types.Object, mask uint64) {
		v, ok := obj.(*types.Var)
		if !ok || mask == 0 || packageLevel(v) {
			return
		}
		if f.mask[obj]|mask != f.mask[obj] {
			f.mask[obj] |= mask
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			f.assign(n.Lhs, n.Rhs, taint)
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				return true
			}
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			f.assign(lhs, n.Values, taint)
		case *ast.RangeStmt:
			if m := f.derived(n.X); m != 0 {
				f.taintTarget(n.Key, m, taint)
				f.taintTarget(n.Value, m, taint)
			}
		}
		return true
	})
	return changed
}

// assign propagates taint from rhs expressions into lhs targets, handling
// both pairwise and tuple (single call / comma-ok) forms.
func (f *Flow) assign(lhs, rhs []ast.Expr, taint func(types.Object, uint64)) {
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			res := f.callResults(call)
			for i := range lhs {
				if i < len(res) {
					f.taintTarget(lhs[i], res[i], taint)
				}
			}
			return
		}
		// v, ok := m[k] / x.(T) / <-ch: only the value can carry taint.
		f.taintTarget(lhs[0], f.derived(rhs[0]), taint)
		return
	}
	for i := range lhs {
		if i < len(rhs) {
			f.taintTarget(lhs[i], f.derived(rhs[i]), taint)
		}
	}
}

// taintTarget marks an assignment target as reached by mask. Writes into
// a projection (x.f = v, x[i] = v, *p = v) taint the container: it now
// holds the reference, so wherever the container goes, the value goes.
func (f *Flow) taintTarget(target ast.Expr, mask uint64, taint func(types.Object, uint64)) {
	if target == nil || mask == 0 {
		return
	}
	switch e := ast.Unparen(target).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		taint(f.ident(e), mask)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		if obj := f.baseObject(target); obj != nil {
			taint(obj, mask)
		}
	}
}

// baseObject strips projections down to the root identifier's object:
// e.g. for `ws.cols[i].data` it returns ws's object.
func (f *Flow) baseObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return f.ident(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (f *Flow) ident(id *ast.Ident) types.Object {
	if obj := f.tr.Info.Uses[id]; obj != nil {
		return obj
	}
	return f.tr.Info.Defs[id]
}

// derived returns the union of root bits reaching expression e.
func (f *Flow) derived(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	// A non-pointerish value cannot carry a reference out of the arena;
	// tuple-typed expressions (comma-ok forms) skip the gate.
	if tv, ok := f.tr.Info.Types[e]; ok && tv.Type != nil {
		if _, tuple := tv.Type.(*types.Tuple); !tuple && !Pointerish(tv.Type) {
			return 0
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return f.mask[f.ident(e)]
	case *ast.ParenExpr:
		return f.derived(e.X)
	case *ast.SelectorExpr:
		if _, ok := f.tr.Info.Selections[e]; ok {
			return f.derived(e.X) // field or method of a tainted value
		}
		return f.mask[f.tr.Info.Uses[e.Sel]] // qualified identifier
	case *ast.IndexExpr:
		return f.derived(e.X)
	case *ast.IndexListExpr:
		return f.derived(e.X)
	case *ast.SliceExpr:
		return f.derived(e.X)
	case *ast.StarExpr:
		return f.derived(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			return f.derived(e.X)
		}
		return 0
	case *ast.TypeAssertExpr:
		return f.derived(e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= f.derived(el)
		}
		return m
	case *ast.FuncLit:
		var m uint64
		for _, obj := range Captures(f.tr.Info, e) {
			m |= f.mask[obj]
		}
		return m
	case *ast.CallExpr:
		var m uint64
		for _, r := range f.callResults(e) {
			m |= r
		}
		return m
	}
	return 0
}

// callResults returns the taint mask of each result of a call.
func (f *Flow) callResults(call *ast.CallExpr) []uint64 {
	info := f.tr.Info
	// Conversions pass their operand through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return []uint64{f.derived(call.Args[0])}
	}
	// Builtins: append merges its inputs; everything else (len, cap,
	// make, new, copy, ...) yields fresh or scalar values.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				var m uint64
				for _, a := range call.Args {
					m |= f.derived(a)
				}
				return []uint64{m}
			}
			return []uint64{0}
		}
	}

	recvMask, argMasks, any := f.callInputs(call)
	sig := callSignature(info, call)
	n := 0
	if sig != nil {
		n = sig.Results().Len()
	}
	out := make([]uint64, n)
	if any == 0 {
		return out
	}
	if f.tr.CallResults != nil {
		fn, _ := f.calleeOf(call)
		if r := f.tr.CallResults(call, fn, recvMask, argMasks); r != nil {
			return r
		}
	}
	// Conservative default: every pointerish result derives from the
	// union of all tainted inputs.
	for i := range out {
		if sig != nil && ResultCarries(sig.Results().At(i).Type()) {
			out[i] = any
		}
	}
	return out
}

// callInputs returns the receiver mask, per-argument masks, and their
// union for a call. A tainted func value being called also counts as an
// input (a closure can return what it captured).
func (f *Flow) callInputs(call *ast.CallExpr) (recvMask uint64, argMasks []uint64, any uint64) {
	info := f.tr.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel {
			recvMask = f.derived(sel.X)
		}
	}
	any = recvMask | f.derived(call.Fun)
	argMasks = make([]uint64, len(call.Args))
	for i, a := range call.Args {
		argMasks[i] = f.derived(a)
		any |= argMasks[i]
	}
	return recvMask, argMasks, any
}

// calleeOf resolves the called *types.Func and whether the call is a
// method call (has a receiver).
func (f *Flow) calleeOf(call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := f.tr.Info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		fn, _ := f.tr.Info.Uses[fun.Sel].(*types.Func)
		_, isSel := f.tr.Info.Selections[fun]
		return fn, isSel && fn != nil && fn.Type().(*types.Signature).Recv() != nil
	}
	return nil, false
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// collect walks the body once after the fixpoint and records sinks.
// inLit tracking keeps return statements inside function literals from
// registering as returns of the enclosing function — a closure's returns
// surface at its call sites instead (via the conservative call default).
func (f *Flow) collect(body *ast.BlockStmt, results []types.Object) {
	f.collectWalk(body, results, false)
}

func (f *Flow) collectWalk(n ast.Node, results []types.Object, inLit bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			f.collectWalk(n.Body, results, true)
			return false
		case *ast.AssignStmt:
			f.collectStores(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			// Package-level specs never appear inside a body; nothing to do.
		case *ast.SendStmt:
			if m := f.derived(n.Value); m != 0 {
				f.sink(Sink{Kind: SinkChannel, Pos: n.Arrow, Mask: m, Expr: n.Value, Result: -1, Arg: -1})
			}
		case *ast.ReturnStmt:
			if inLit {
				return true
			}
			if len(n.Results) == 0 {
				for i, rv := range results {
					if m := f.mask[rv]; m != 0 {
						f.sink(Sink{Kind: SinkReturn, Pos: n.Pos(), Mask: m, Result: i, Arg: -1})
					}
				}
				return true
			}
			for i, r := range n.Results {
				if m := f.derived(r); m != 0 {
					f.sink(Sink{Kind: SinkReturn, Pos: r.Pos(), Mask: m, Expr: r, Result: i, Arg: -1})
				}
			}
		case *ast.GoStmt:
			if m := f.derived(n.Call.Fun); m != 0 {
				f.sink(Sink{Kind: SinkGoroutine, Pos: n.Pos(), Mask: m, Expr: n.Call.Fun, Result: -1, Arg: -1})
			}
			for _, a := range n.Call.Args {
				if m := f.derived(a); m != 0 {
					f.sink(Sink{Kind: SinkGoroutine, Pos: a.Pos(), Mask: m, Expr: a, Result: -1, Arg: -1})
				}
			}
			// Args and captures are accounted for; don't re-report the
			// call's arguments as SinkCall below.
			for _, a := range n.Call.Args {
				f.collectWalk(a, results, inLit)
			}
			return false
		case *ast.CallExpr:
			f.collectCall(n)
		}
		return true
	})
}

// collectStores records stores of derived values into package-level
// variables (directly or through a projection of one).
func (f *Flow) collectStores(lhs, rhs []ast.Expr) {
	maskAt := func(i int) uint64 {
		if len(rhs) == 1 && len(lhs) > 1 {
			if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
				res := f.callResults(call)
				if i < len(res) {
					return res[i]
				}
				return 0
			}
			if i == 0 {
				return f.derived(rhs[0])
			}
			return 0
		}
		if i < len(rhs) {
			return f.derived(rhs[i])
		}
		return 0
	}
	for i, l := range lhs {
		m := maskAt(i)
		if m == 0 {
			continue
		}
		if v, ok := f.baseObject(l).(*types.Var); ok && packageLevel(v) {
			f.sink(Sink{Kind: SinkGlobal, Pos: l.Pos(), Mask: m, Expr: l, Result: -1, Arg: -1})
		}
	}
}

// collectCall records derived arguments and receivers escaping into a
// callee. Builtins and conversions are skipped (they don't retain), and
// calling a tainted func value is a use, not an escape.
func (f *Flow) collectCall(call *ast.CallExpr) {
	info := f.tr.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	fn, isMethod := f.calleeOf(call)
	if isMethod {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if m := f.derived(sel.X); m != 0 {
				f.sink(Sink{Kind: SinkCall, Pos: call.Pos(), Mask: m, Expr: sel.X, Result: -1, Call: call, Arg: -1})
			}
		}
	}
	_ = fn
	for i, a := range call.Args {
		if m := f.derived(a); m != 0 {
			f.sink(Sink{Kind: SinkCall, Pos: a.Pos(), Mask: m, Expr: a, Result: -1, Call: call, Arg: i})
		}
	}
}

func (f *Flow) sink(s Sink) { f.Sinks = append(f.Sinks, s) }

// Captures returns the distinct local variables of an enclosing function
// that lit references — the closure's captured environment. Package-level
// variables and struct fields are not captures.
func Captures(info *types.Info, lit *ast.FuncLit) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] || packageLevel(obj) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal (param or local)
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// packageLevel reports whether v is declared at package scope.
func packageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
