package analysis_test

import (
	"os/exec"
	"strings"
	"testing"

	"spotfi/internal/analysis/checker"
	"spotfi/internal/analysis/load"
	"spotfi/internal/analysis/suite"
)

// TestRepoIsClean runs the full analyzer suite over every package in the
// module and asserts zero findings. Any new violation either gets fixed or
// gets an explicit //lint:allow with a reason — this test is what keeps
// that invariant from rotting between CI runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(string(out))

	pkgs, err := load.Packages(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from %s; expected the whole module", len(pkgs), root)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	findings, err := checker.Run(suite.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
