package chaos

import (
	"encoding/binary"
	"fmt"
	"math"

	"spotfi/internal/wire"
)

// PoisonCSIReport returns a copy of an encoded CSI-report frame with its
// first CSI value overwritten by NaN. The frame stays structurally valid
// — magic, lengths, and MAC untouched — so it exercises the server's
// value-level defense (drop the packet, keep the connection) rather than
// its framing defense. wire.EncodeCSIReport refuses to build such a frame
// on purpose; chaos forges what a buggy NIC driver would ship.
func PoisonCSIReport(f wire.Frame) (wire.Frame, error) {
	// Payload layout (wire.EncodeCSIReport): APID(4) Seq(8) Timestamp(8)
	// RSSI(8) MACLen(2) Antennas(2) Subcarriers(2) = 34-byte header, then
	// the MAC, then (re, im) float64 pairs.
	const hdrLen = 34
	if f.Type != wire.TypeCSIReport || len(f.Payload) < hdrLen {
		return wire.Frame{}, fmt.Errorf("chaos: not an encoded CSI report")
	}
	macLen := int(binary.LittleEndian.Uint16(f.Payload[28:30]))
	off := hdrLen + macLen
	if len(f.Payload) < off+8 {
		return wire.Frame{}, fmt.Errorf("chaos: CSI report has no values to poison")
	}
	payload := append([]byte(nil), f.Payload...)
	binary.LittleEndian.PutUint64(payload[off:off+8], math.Float64bits(math.NaN()))
	return wire.Frame{Type: f.Type, Payload: payload}, nil
}
