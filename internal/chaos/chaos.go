// Package chaos is a deterministic fault-injection layer for SpotFi's
// deployed path (AP → wire → server → collector → localize). It wraps the
// seams the real system already has — net.Conn/net.Listener for the wire,
// apnode's PacketSource for the NIC — and injects the failure classes a
// fleet of commodity APs produces in practice: network latency, read/write
// stalls, mid-frame connection resets, byte corruption, one-way
// partitions, non-finite CSI, duplicated and reordered packets, and clock
// skew.
//
// All randomness flows from a caller-provided seed, so a fault schedule
// that exposes a bug replays exactly. Every injected fault increments a
// per-class counter (obs.Counter, nil-safe and lock-free) so soak tests
// can assert that each class actually fired rather than silently rolling
// zero faults.
package chaos

import (
	"math/rand"
	"sync"
)

// rng is a mutex-guarded *rand.Rand: math/rand.Rand is not safe for
// concurrent use, and a wrapped conn's Read and Write run on different
// goroutines.
type rng struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newRNG(seed int64) *rng {
	return &rng{r: rand.New(rand.NewSource(seed))}
}

// roll returns true with probability p.
func (g *rng) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64() < p
}

// intn returns a uniform int in [0, n). n must be > 0.
func (g *rng) intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// int63n returns a uniform int64 in [0, n). n must be > 0.
func (g *rng) int63n(n int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63n(n)
}

// float64u returns a uniform float64 in [0, 1).
func (g *rng) float64u() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}
