package chaos

import (
	"io"
	"math"
	"math/cmplx"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
)

// PacketSource mirrors apnode.PacketSource structurally, so a chaos
// Source slots into an apnode.Agent without this package importing it.
type PacketSource interface {
	Next() (*csi.Packet, error)
}

// SourceConfig selects the NIC-level fault classes a wrapped packet
// source injects. Probabilities are per emitted packet; a zero config is
// a transparent wrapper.
type SourceConfig struct {
	// Seed drives every fault decision.
	Seed int64

	// NaNProb and InfProb poison one CSI entry of the packet with NaN or
	// +Inf — what a buggy NIC driver's uninitialized or overflowed CSI
	// report looks like. The packet is cloned first; the inner source's
	// packet is never mutated.
	NaNProb float64
	InfProb float64

	// DupProb re-emits a clone of the previously emitted packet —
	// retransmissions and driver-queue double reporting.
	DupProb float64

	// ReorderProb holds the packet back and emits its successor first.
	ReorderProb float64

	// SkewNs is a constant clock offset added to every timestamp, and
	// JitterNs a per-packet uniform offset in [-JitterNs, +JitterNs] — the
	// unsynchronized AP clocks the paper's design assumes (Sec. 3).
	SkewNs   int64
	JitterNs int64

	// PhaseRampRad rotates antenna i's CSI by i·PhaseRampRad on every
	// packet — a miscalibrated RF chain or mismatched antenna cable. At
	// λ/2 spacing a ramp of φ shifts the apparent AoA by asin(φ/π) while
	// leaving amplitudes, timestamps, and framing untouched, so only the
	// estimate-quality layer can see it.
	PhaseRampRad float64

	// PhaseJitterRad adds a per-packet uniform ramp slope in
	// [-PhaseJitterRad, +PhaseJitterRad] on top of PhaseRampRad — phase-lock
	// instability that makes the AoA wander within a single burst.
	PhaseJitterRad float64
}

// SourceStats counts injected faults by class.
type SourceStats struct {
	NaNs       obs.Counter
	Infs       obs.Counter
	Dups       obs.Counter
	Reorders   obs.Counter
	PhaseSkews obs.Counter
}

// Source wraps a PacketSource with fault injection. It is not safe for
// concurrent use, matching the contract of the sources it wraps.
type Source struct {
	inner PacketSource
	cfg   SourceConfig
	g     *rng
	stats SourceStats

	held *csi.Packet // packet withheld by a reorder
	last *csi.Packet // previously emitted packet, for duplication
}

// WrapSource wraps inner with fault injection per cfg.
func WrapSource(inner PacketSource, cfg SourceConfig) *Source {
	return &Source{inner: inner, cfg: cfg, g: newRNG(cfg.Seed)}
}

// Stats returns the fault counters this source increments.
func (s *Source) Stats() *SourceStats { return &s.stats }

// Next yields the inner source's next packet, possibly duplicated,
// reordered, clock-skewed, or poisoned with non-finite CSI.
func (s *Source) Next() (*csi.Packet, error) {
	if s.last != nil && s.g.roll(s.cfg.DupProb) {
		s.stats.Dups.Inc()
		return s.emit(clonePacket(s.last)), nil
	}
	p := s.held
	s.held = nil
	if p == nil {
		var err error
		p, err = s.inner.Next()
		if err != nil {
			return nil, err
		}
	}
	if s.held == nil && s.g.roll(s.cfg.ReorderProb) {
		next, err := s.inner.Next()
		if err == nil {
			s.stats.Reorders.Inc()
			s.held = p
			p = next
		} else if err != io.EOF {
			return nil, err
		}
		// On EOF keep p: the last packet has no successor to swap with.
	}
	// Phase skew is applied to fresh packets only: the dup path above
	// re-emits a clone of an already-skewed packet, and ramping it again
	// would double the fault.
	return s.emit(s.skewPhase(s.poison(p))), nil
}

// emit records p as the most recently emitted packet and applies clock
// faults.
func (s *Source) emit(p *csi.Packet) *csi.Packet {
	p.TimestampNs += s.cfg.SkewNs
	if s.cfg.JitterNs > 0 {
		p.TimestampNs += s.g.int63n(2*s.cfg.JitterNs+1) - s.cfg.JitterNs
	}
	s.last = p
	return p
}

// poison replaces one CSI entry with NaN or +Inf, if rolled.
func (s *Source) poison(p *csi.Packet) *csi.Packet {
	var bad complex128
	switch {
	case s.g.roll(s.cfg.NaNProb):
		s.stats.NaNs.Inc()
		bad = complex(math.NaN(), math.NaN())
	case s.g.roll(s.cfg.InfProb):
		s.stats.Infs.Inc()
		bad = complex(math.Inf(1), 0)
	default:
		return p
	}
	p = clonePacket(p)
	rows := p.CSI.Values
	row := rows[s.g.intn(len(rows))]
	row[s.g.intn(len(row))] = bad
	return p
}

// skewPhase applies the configured per-antenna phase ramp (constant plus
// per-packet jitter). The packet is cloned first; the inner source's CSI
// is never mutated.
func (s *Source) skewPhase(p *csi.Packet) *csi.Packet {
	if s.cfg.PhaseRampRad == 0 && s.cfg.PhaseJitterRad <= 0 {
		return p
	}
	if p.CSI == nil || len(p.CSI.Values) == 0 {
		return p
	}
	slope := s.cfg.PhaseRampRad
	if s.cfg.PhaseJitterRad > 0 {
		slope += (2*s.g.float64u() - 1) * s.cfg.PhaseJitterRad
	}
	s.stats.PhaseSkews.Inc()
	p = clonePacket(p)
	for i, row := range p.CSI.Values {
		rot := cmplx.Exp(complex(0, float64(i)*slope))
		for k := range row {
			row[k] *= rot
		}
	}
	return p
}

func clonePacket(p *csi.Packet) *csi.Packet {
	cp := *p
	if p.CSI != nil {
		cp.CSI = p.CSI.Clone()
	}
	return &cp
}
