package chaos

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/cmplx"
	"net"
	"testing"
	"time"

	"spotfi/internal/csi"
)

// pipe returns a wrapped client conn talking to a raw server conn.
func pipe(t *testing.T, cfg ConnConfig) (*Conn, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return WrapConn(c1, cfg), c2
}

func TestConnTransparentByDefault(t *testing.T) {
	cc, srv := pipe(t, ConnConfig{Seed: 1})
	msg := []byte("hello spotfi")
	go func() {
		if _, err := cc.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	s := cc.Stats()
	if n := s.Corruptions.Value() + s.Resets.Value() + s.Stalls.Value() + s.Partitions.Value(); n != 0 {
		t.Fatalf("zero config injected %d faults", n)
	}
}

func TestConnCorruption(t *testing.T) {
	cc, srv := pipe(t, ConnConfig{Seed: 7, CorruptProb: 1})
	msg := bytes.Repeat([]byte{0xab}, 64)
	go cc.Write(msg) //lint:allow errdrop test write; the read side verifies delivery
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("CorruptProb=1 delivered the buffer unmodified")
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
	if cc.Stats().Corruptions.Value() != 1 {
		t.Fatalf("Corruptions = %d, want 1", cc.Stats().Corruptions.Value())
	}
	if bytes.Equal(msg, bytes.Repeat([]byte{0xab}, 64)) == false {
		t.Fatal("caller's buffer was mutated")
	}
}

func TestConnResetMidWrite(t *testing.T) {
	cc, srv := pipe(t, ConnConfig{Seed: 3, ResetProb: 1})
	msg := bytes.Repeat([]byte{0x42}, 32)
	go func() {
		if n, err := cc.Write(msg); err != nil || n != len(msg) {
			t.Errorf("reset write reported (%d, %v), want buffered success", n, err)
		}
	}()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(msg) {
		t.Fatalf("peer saw %d bytes, want a strict non-empty prefix of %d", len(got), len(msg))
	}
	if cc.Stats().Resets.Value() != 1 {
		t.Fatalf("Resets = %d, want 1", cc.Stats().Resets.Value())
	}
	if _, err := cc.Write(msg); err == nil {
		t.Fatal("write after injected reset succeeded")
	}
}

func TestConnPartitionBlackholesWrites(t *testing.T) {
	cc, srv := pipe(t, ConnConfig{Seed: 5, PartitionProb: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if n, err := cc.Write([]byte("vanish")); err != nil || n != 6 {
				t.Errorf("partitioned write reported (%d, %v)", n, err)
			}
		}
	}()
	<-done
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //lint:allow errdrop net.Pipe deadlines cannot fail
	if n, err := srv.Read(make([]byte, 16)); err == nil {
		t.Fatalf("peer received %d bytes through a partition", n)
	}
	if cc.Stats().Partitions.Value() != 1 {
		t.Fatalf("Partitions = %d, want 1 (sticky)", cc.Stats().Partitions.Value())
	}
}

func TestConnStallDelaysWrite(t *testing.T) {
	cc, srv := pipe(t, ConnConfig{Seed: 9, StallProb: 1, Stall: 80 * time.Millisecond})
	start := time.Now()
	go func() {
		got := make([]byte, 2)
		io.ReadFull(srv, got) //lint:allow errdrop test read; timing is the assertion
	}()
	if _, err := cc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("stalled write finished in %v, want ≥ 80ms", d)
	}
	if cc.Stats().Stalls.Value() == 0 {
		t.Fatal("stall not counted")
	}
}

func TestConnDeterminism(t *testing.T) {
	run := func() []byte {
		c1, c2 := net.Pipe()
		defer c1.Close()
		defer c2.Close()
		cc := WrapConn(c1, ConnConfig{Seed: 11, CorruptProb: 0.5})
		var got bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			io.CopyN(&got, c2, 160) //lint:allow errdrop test read; the returned bytes are compared
		}()
		for i := 0; i < 10; i++ {
			if _, err := cc.Write(bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
				t.Fatal(err)
			}
		}
		<-done
		return got.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same seed and op sequence produced different fault schedules")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := WrapListener(raw, ConnConfig{Seed: 13, CorruptProb: 1})
	defer lis.Close()

	go func() {
		c, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		c.Write(bytes.Repeat([]byte{0x55}, 32)) //lint:allow errdrop test write; the accept side verifies delivery
	}()

	c, err := lis.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make([]byte, 32)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, bytes.Repeat([]byte{0x55}, 32)) {
		t.Fatal("accepted conn was not fault-wrapped")
	}
	if lis.Stats().Corruptions.Value() == 0 {
		t.Fatal("listener stats not shared with accepted conn")
	}
}

// sliceSource emits a fixed packet sequence.
type sliceSource struct {
	pkts []*csi.Packet
	i    int
}

func (s *sliceSource) Next() (*csi.Packet, error) {
	if s.i >= len(s.pkts) {
		return nil, io.EOF
	}
	p := s.pkts[s.i]
	s.i++
	return p, nil
}

func makePackets(n int) []*csi.Packet {
	out := make([]*csi.Packet, n)
	for i := range out {
		m := csi.NewMatrix(3, 8)
		for a := range m.Values {
			for k := range m.Values[a] {
				m.Values[a][k] = complex(1, float64(i))
			}
		}
		out[i] = &csi.Packet{APID: 1, TargetMAC: "t", Seq: uint64(i), TimestampNs: int64(i) * 1000, RSSIdBm: -40, CSI: m}
	}
	return out
}

func TestSourceTransparentByDefault(t *testing.T) {
	src := WrapSource(&sliceSource{pkts: makePackets(5)}, SourceConfig{Seed: 1})
	for i := 0; i < 5; i++ {
		p, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p.Seq != uint64(i) || p.TimestampNs != int64(i)*1000 {
			t.Fatalf("packet %d arrived as seq %d ts %d", i, p.Seq, p.TimestampNs)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSourceNaNInjection(t *testing.T) {
	src := WrapSource(&sliceSource{pkts: makePackets(4)}, SourceConfig{Seed: 2, NaNProb: 1})
	p, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	verr := p.Validate()
	if verr == nil {
		t.Fatal("NaN-poisoned packet validated")
	}
	if !errors.Is(verr, csi.ErrNonFinite) {
		t.Fatalf("poisoned packet error %v does not wrap csi.ErrNonFinite", verr)
	}
	if src.Stats().NaNs.Value() != 1 {
		t.Fatalf("NaNs = %d, want 1", src.Stats().NaNs.Value())
	}
}

func TestSourceInfInjectionClonesInner(t *testing.T) {
	pkts := makePackets(2)
	src := WrapSource(&sliceSource{pkts: pkts}, SourceConfig{Seed: 4, InfProb: 1})
	p, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Validate() == nil {
		t.Fatal("Inf-poisoned packet validated")
	}
	// The inner source's packet must be untouched.
	for _, row := range pkts[0].CSI.Values {
		for _, v := range row {
			if math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
				t.Fatal("poisoning mutated the inner source's packet")
			}
		}
	}
}

func TestSourceDuplication(t *testing.T) {
	src := WrapSource(&sliceSource{pkts: makePackets(3)}, SourceConfig{Seed: 3, DupProb: 1})
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	second, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != first.Seq {
		t.Fatalf("expected duplicate of seq %d, got seq %d", first.Seq, second.Seq)
	}
	if second == first {
		t.Fatal("duplicate shares the original packet pointer")
	}
	if src.Stats().Dups.Value() == 0 {
		t.Fatal("duplication not counted")
	}
}

func TestSourceReorderAndSkew(t *testing.T) {
	src := WrapSource(&sliceSource{pkts: makePackets(4)}, SourceConfig{
		Seed: 6, ReorderProb: 1, SkewNs: 5_000_000,
	})
	var seqs []uint64
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(p.Seq)*1000 + 5_000_000; p.TimestampNs != want {
			t.Fatalf("seq %d skewed timestamp %d, want %d", p.Seq, p.TimestampNs, want)
		}
		seqs = append(seqs, p.Seq)
	}
	if len(seqs) != 4 {
		t.Fatalf("reorder lost packets: got %d of 4 (%v)", len(seqs), seqs)
	}
	inOrder := true
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("ReorderProb=1 emitted in order: %v", seqs)
	}
	if src.Stats().Reorders.Value() == 0 {
		t.Fatal("reorder not counted")
	}
}

func TestSourceDeterminism(t *testing.T) {
	run := func() []uint64 {
		src := WrapSource(&sliceSource{pkts: makePackets(16)}, SourceConfig{
			Seed: 8, DupProb: 0.3, ReorderProb: 0.3, NaNProb: 0.2, JitterNs: 1000,
		})
		var out []uint64
		for {
			p, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p.Seq, uint64(p.TimestampNs))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSourcePhaseRamp(t *testing.T) {
	pkts := makePackets(2)
	const ramp = 0.8
	src := WrapSource(&sliceSource{pkts: pkts}, SourceConfig{Seed: 9, PhaseRampRad: ramp})
	p, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Antenna i is rotated by i·ramp relative to the original CSI; the
	// amplitudes are untouched and the packet still validates (the whole
	// point of the fault: framing-level defenses cannot see it).
	if err := p.Validate(); err != nil {
		t.Fatalf("phase-skewed packet no longer validates: %v", err)
	}
	for i, row := range p.CSI.Values {
		for k, v := range row {
			orig := pkts[0].CSI.Values[i][k]
			if math.Abs(cmplx.Abs(v)-cmplx.Abs(orig)) > 1e-12 {
				t.Fatalf("antenna %d sub %d amplitude changed: %v -> %v", i, k, orig, v)
			}
			got := cmplx.Phase(v) - cmplx.Phase(orig)
			want := float64(i) * ramp
			// Compare modulo 2π.
			if d := math.Mod(got-want+3*math.Pi, 2*math.Pi) - math.Pi; math.Abs(d) > 1e-9 {
				t.Fatalf("antenna %d phase shift %.4f, want %.4f", i, got, want)
			}
		}
	}
	// The inner source's packet must be untouched.
	if pkts[0].CSI.Values[1][0] != complex(1, 0) {
		t.Fatalf("phase skew mutated the inner source's packet: %v", pkts[0].CSI.Values[1][0])
	}
	if src.Stats().PhaseSkews.Value() != 1 {
		t.Fatalf("PhaseSkews = %d, want 1", src.Stats().PhaseSkews.Value())
	}
}

func TestSourcePhaseJitterVariesPerPacket(t *testing.T) {
	src := WrapSource(&sliceSource{pkts: makePackets(6)}, SourceConfig{Seed: 10, PhaseJitterRad: 0.5})
	// All inner packets have identical CSI, so any difference between
	// emitted packets' antenna-1 phases is the per-packet jitter.
	var phases []float64
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, cmplx.Phase(p.CSI.Values[1][0]))
	}
	if len(phases) != 6 {
		t.Fatalf("got %d packets, want 6", len(phases))
	}
	varies := false
	for i := 1; i < len(phases); i++ {
		if math.Abs(phases[i]-phases[0]) > 1e-6 {
			varies = true
		}
	}
	if !varies {
		t.Fatalf("PhaseJitterRad produced identical ramps across packets: %v", phases)
	}
	if got := src.Stats().PhaseSkews.Value(); got != 6 {
		t.Fatalf("PhaseSkews = %d, want 6", got)
	}
}
