package chaos

import (
	"context"
	"net"
	"sync/atomic"
	"time"

	"spotfi/internal/obs"
)

// ConnConfig selects the wire fault classes a wrapped connection injects
// and how often. Probabilities are per Read/Write call; zero values inject
// nothing, so a zero ConnConfig is a transparent wrapper.
type ConnConfig struct {
	// Seed drives every fault decision. The same seed over the same
	// sequence of conn operations replays the same fault schedule.
	Seed int64

	// LatencyProb delays an operation by Latency before it proceeds —
	// ordinary network queueing.
	LatencyProb float64
	Latency     time.Duration

	// StallProb pauses an operation for Stall — long enough, in tests, to
	// trip the server's read deadlines (slow-loris APs, congested links).
	StallProb float64
	Stall     time.Duration

	// ResetProb abruptly closes the connection. On a write, a random
	// strict prefix of the buffer is flushed first, so the peer observes a
	// mid-frame truncation rather than a clean close.
	ResetProb float64

	// CorruptProb XORs one random byte of the transferred data — bit rot,
	// a buggy middlebox, a bad NIC ring buffer.
	CorruptProb float64

	// PartitionProb silently blackholes the connection from then on:
	// writes report success but carry nothing, reads never deliver data
	// (deadlines on the underlying conn still fire). The peer sees a
	// half-open connection, not a close.
	PartitionProb float64
}

// ConnStats counts injected faults by class. Counters are lock-free and
// shared by every conn a Listener or Dialer produces.
type ConnStats struct {
	Latencies   obs.Counter
	Stalls      obs.Counter
	Resets      obs.Counter
	Corruptions obs.Counter
	Partitions  obs.Counter
}

// Conn wraps a net.Conn with fault injection on Read and Write. Methods
// not listed here (deadlines, addresses, Close) pass through.
type Conn struct {
	net.Conn
	cfg         ConnConfig
	g           *rng
	stats       *ConnStats
	partitioned atomic.Bool
	reset       atomic.Bool
}

// WrapConn wraps c with fault injection per cfg, counting into fresh
// stats (see Stats).
func WrapConn(c net.Conn, cfg ConnConfig) *Conn {
	return wrapShared(c, cfg, &ConnStats{})
}

func wrapShared(c net.Conn, cfg ConnConfig, stats *ConnStats) *Conn {
	return &Conn{Conn: c, cfg: cfg, g: newRNG(cfg.Seed), stats: stats}
}

// Stats returns the fault counters this conn increments.
func (c *Conn) Stats() *ConnStats { return c.stats }

// delay injects the stall or latency fault, if rolled.
func (c *Conn) delay() {
	if c.g.roll(c.cfg.StallProb) {
		c.stats.Stalls.Inc()
		time.Sleep(c.cfg.Stall)
	} else if c.g.roll(c.cfg.LatencyProb) {
		c.stats.Latencies.Inc()
		time.Sleep(c.cfg.Latency)
	}
}

// Write injects faults, then forwards to the underlying conn. A reset
// reports success — like a real RST, the failure surfaces on the next
// operation.
func (c *Conn) Write(b []byte) (int, error) {
	if c.partitioned.Load() {
		return len(b), nil
	}
	if c.g.roll(c.cfg.PartitionProb) {
		c.partitioned.Store(true)
		c.stats.Partitions.Inc()
		return len(b), nil
	}
	if !c.reset.Load() && c.g.roll(c.cfg.ResetProb) {
		c.reset.Store(true)
		c.stats.Resets.Inc()
		if len(b) >= 2 {
			c.Conn.Write(b[:1+c.g.intn(len(b)-1)]) //lint:allow errdrop the connection is being torn down; the peer sees the truncation
		}
		c.Conn.Close() //lint:allow errdrop injected reset; the next operation reports the closed conn
		return len(b), nil
	}
	c.delay()
	if len(b) > 0 && c.g.roll(c.cfg.CorruptProb) {
		c.stats.Corruptions.Inc()
		mb := append([]byte(nil), b...)
		mb[c.g.intn(len(mb))] ^= 0xff
		return c.Conn.Write(mb)
	}
	return c.Conn.Write(b)
}

// Read injects faults, then forwards to the underlying conn. While
// partitioned, delivered bytes are swallowed and the read keeps blocking,
// so the caller observes a half-open connection until a deadline or close.
func (c *Conn) Read(b []byte) (int, error) {
	if !c.reset.Load() && c.g.roll(c.cfg.ResetProb) {
		c.reset.Store(true)
		c.stats.Resets.Inc()
		c.Conn.Close() //lint:allow errdrop injected reset; the pass-through read below reports it
	}
	c.delay()
	for {
		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		if c.partitioned.Load() {
			continue
		}
		if n > 0 && c.g.roll(c.cfg.CorruptProb) {
			c.stats.Corruptions.Inc()
			b[c.g.intn(n)] ^= 0xff
		}
		return n, nil
	}
}

// Listener wraps a net.Listener so every accepted connection injects
// faults. Connection i is wrapped with Seed+i, so each conn's schedule is
// deterministic and distinct; all conns share one ConnStats.
type Listener struct {
	net.Listener
	cfg   ConnConfig
	stats *ConnStats
	seq   atomic.Int64
}

// WrapListener wraps lis with per-connection fault injection.
func WrapListener(lis net.Listener, cfg ConnConfig) *Listener {
	return &Listener{Listener: lis, cfg: cfg, stats: &ConnStats{}}
}

// Accept accepts from the underlying listener and wraps the conn.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	cfg.Seed += l.seq.Add(1)
	return wrapShared(c, cfg, l.stats), nil
}

// Stats returns the fault counters shared by all accepted conns.
func (l *Listener) Stats() *ConnStats { return l.stats }

// DialFunc matches apnode.Agent's Dial hook.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Dialer returns a DialFunc that dials with net.Dialer and wraps every
// connection per cfg. Connection i gets Seed+i; all conns count into the
// returned shared stats.
func Dialer(cfg ConnConfig) (DialFunc, *ConnStats) {
	stats := &ConnStats{}
	var seq atomic.Int64
	var d net.Dialer
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		cc := cfg
		cc.Seed += seq.Add(1)
		return wrapShared(c, cc, stats), nil
	}, stats
}
