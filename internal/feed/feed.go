// Package feed fans localization fixes out to streaming subscribers —
// the server-side hook that makes a fix observable the moment it is
// produced. spotfi-loadgen subscribes to measure end-to-end packet→fix
// latency and live accuracy; it is also the seed of the query plane
// (ROADMAP item 3).
//
// The fanout is bounded in both directions: at most MaxSubscribers
// concurrent streams, each with a fixed-depth buffer. A subscriber that
// cannot keep up is disconnected and counted rather than allowed to
// block the publisher or buffer without bound — the pipeline's latency
// must never depend on a debug client's read rate.
package feed

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	"spotfi/internal/obs"
)

// Fix is one localization result as streamed on /debug/fixes, one JSON
// object per line (ndjson).
type Fix struct {
	// MAC is the target device, as carried in the CSI reports.
	MAC string `json:"mac"`
	// X, Y are the estimated position in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Confidence is the quality score in [0,1].
	Confidence float64 `json:"confidence"`
	// Mode is the degradation-ladder rung that produced the fix
	// (empty = full pipeline).
	Mode string `json:"mode,omitempty"`
	// CaptureNs is the sender timestamp (ns) of the newest CSI packet in
	// the burst; EmitNs is the server clock when the fix was published.
	// When the sender stamps wall-clock time (loadgen does), EmitNs −
	// CaptureNs is the end-to-end packet→fix latency.
	CaptureNs int64 `json:"capture_ns"`
	EmitNs    int64 `json:"emit_ns"`
	// APs is how many APs contributed reports to the fix.
	APs int `json:"aps"`
}

// Metrics holds the feed's instrumentation. All fields may be nil
// (obs metrics are nil-receiver no-ops).
type Metrics struct {
	// Published counts fixes offered to the fanout (whether or not any
	// subscriber was listening).
	Published *obs.Counter
	// DroppedSubs counts subscribers disconnected for falling behind.
	DroppedSubs *obs.Counter
	// RejectedSubs counts subscriptions refused at the concurrency cap.
	RejectedSubs *obs.Counter
	// Subscribers tracks the current stream count.
	Subscribers *obs.Gauge
}

// NewMetrics registers the spotfi_feed_* family on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Published:    reg.Counter("spotfi_feed_published_total", "Fixes offered to the fix-feed fanout.", nil),
		DroppedSubs:  reg.Counter("spotfi_feed_dropped_subscribers_total", "Fix-feed subscribers disconnected for falling behind.", nil),
		RejectedSubs: reg.Counter("spotfi_feed_rejected_subscribers_total", "Fix-feed subscriptions refused at the concurrency cap.", nil),
		Subscribers:  reg.Gauge("spotfi_feed_subscribers", "Currently connected fix-feed subscribers.", nil),
	}
}

// Config parameterizes a Feed. Zero values take the defaults noted.
type Config struct {
	// Buffer is the per-subscriber channel depth (default 64): the burst
	// of fixes a subscriber may fall behind by before it is dropped.
	Buffer int
	// MaxSubscribers caps concurrent streams (default 16).
	MaxSubscribers int
	// Metrics receives instrumentation; nil records nothing.
	Metrics *Metrics
}

// Feed is a bounded-fanout fix publisher. Use New.
type Feed struct {
	cfg Config

	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
}

// New returns a Feed with cfg (zero fields defaulted).
func New(cfg Config) *Feed {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	if cfg.MaxSubscribers <= 0 {
		cfg.MaxSubscribers = 16
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	return &Feed{cfg: cfg, subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one stream of fixes. Receive from Fixes(); the channel
// closes when the subscriber is dropped for falling behind, the feed is
// closed, or Unsubscribe is called.
type Subscriber struct {
	ch      chan Fix
	dropped atomic.Bool
}

// Fixes returns the subscriber's receive channel.
func (s *Subscriber) Fixes() <-chan Fix { return s.ch }

// Dropped reports whether the feed disconnected this subscriber for
// falling behind (as opposed to a clean close).
func (s *Subscriber) Dropped() bool { return s.dropped.Load() }

// ErrTooManySubscribers is returned by Subscribe at the concurrency cap.
var ErrTooManySubscribers = errors.New("feed: subscriber cap reached")

// ErrClosed is returned by Subscribe after Close.
var ErrClosed = errors.New("feed: closed")

// Subscribe opens a new stream.
func (f *Feed) Subscribe() (*Subscriber, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if len(f.subs) >= f.cfg.MaxSubscribers {
		f.cfg.Metrics.RejectedSubs.Inc()
		return nil, ErrTooManySubscribers
	}
	s := &Subscriber{ch: make(chan Fix, f.cfg.Buffer)}
	f.subs[s] = struct{}{}
	f.cfg.Metrics.Subscribers.Inc()
	return s, nil
}

// Unsubscribe closes a stream. Safe to call more than once, and after
// the feed already dropped the subscriber.
func (f *Feed) Unsubscribe(s *Subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[s]; !ok {
		return
	}
	delete(f.subs, s)
	close(s.ch)
	f.cfg.Metrics.Subscribers.Dec()
}

// Publish offers one fix to every subscriber without blocking: a
// subscriber whose buffer is full is disconnected (its channel closed)
// and counted. Channel sends and closes both happen under the feed
// mutex, so a send can never race a close.
func (f *Feed) Publish(fx Fix) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.cfg.Metrics.Published.Inc()
	for s := range f.subs {
		select {
		case s.ch <- fx:
		default:
			delete(f.subs, s)
			s.dropped.Store(true)
			close(s.ch)
			f.cfg.Metrics.DroppedSubs.Inc()
			f.cfg.Metrics.Subscribers.Dec()
		}
	}
}

// Close disconnects every subscriber and makes further Publish calls
// no-ops. Idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for s := range f.subs {
		delete(f.subs, s)
		close(s.ch)
		f.cfg.Metrics.Subscribers.Dec()
	}
}

// SubscriberCount returns the current number of streams.
func (f *Feed) SubscriberCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// Handler streams fixes as JSON lines — mount it at /debug/fixes. The
// stream runs until the client disconnects, the subscriber falls behind
// (dropped), or the feed closes. The handler goroutine is the stream's
// only reader, so a disconnect tears the subscription down with it — no
// goroutine outlives the request.
func (f *Feed) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sub, err := f.Subscribe()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer f.Unsubscribe(sub)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		if fl != nil {
			fl.Flush() // commit headers so clients see the stream open
		}
		ctx := r.Context()
		var buf bytes.Buffer
		for {
			select {
			case <-ctx.Done():
				return
			case fx, ok := <-sub.Fixes():
				if !ok {
					return
				}
				buf.Reset()
				if err := json.NewEncoder(&buf).Encode(fx); err != nil {
					return
				}
				if _, err := w.Write(buf.Bytes()); err != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
		}
	})
}
