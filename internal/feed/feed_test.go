package feed

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"spotfi/internal/obs"
)

// TestSlowSubscriberDropped is the backpressure contract: a subscriber
// that stops reading is disconnected and counted once its buffer fills,
// while a subscriber that keeps up receives every fix.
func TestSlowSubscriberDropped(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	f := New(Config{Buffer: 2, Metrics: m})

	fast, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Subscribers.Value(); got != 2 {
		t.Fatalf("subscribers gauge = %d, want 2", got)
	}

	var got []Fix
	for i := 0; i < 10; i++ {
		f.Publish(Fix{EmitNs: int64(i)})
		// Drain fast synchronously so only slow falls behind.
		select {
		case fx := <-fast.Fixes():
			got = append(got, fx)
		default:
			t.Fatalf("fast subscriber missing fix %d", i)
		}
	}

	if !slow.Dropped() {
		t.Fatal("slow subscriber not dropped")
	}
	if fast.Dropped() {
		t.Fatal("fast subscriber dropped")
	}
	if len(got) != 10 {
		t.Fatalf("fast subscriber got %d fixes, want 10", len(got))
	}
	for i, fx := range got {
		if fx.EmitNs != int64(i) {
			t.Fatalf("fix %d out of order: EmitNs %d", i, fx.EmitNs)
		}
	}
	if got := m.DroppedSubs.Value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
	if got := m.Subscribers.Value(); got != 1 {
		t.Fatalf("subscribers gauge after drop = %d, want 1", got)
	}
	// The slow channel still delivers what was buffered before the drop,
	// then closes.
	n := 0
	for range slow.Fixes() {
		n++
	}
	if n != 2 {
		t.Fatalf("slow subscriber drained %d buffered fixes, want 2", n)
	}
	// Unsubscribe after a forced drop must not double-close.
	f.Unsubscribe(slow)
	f.Unsubscribe(fast)
	f.Unsubscribe(fast)
	if got := m.Subscribers.Value(); got != 0 {
		t.Fatalf("subscribers gauge after unsubscribe = %d, want 0", got)
	}
}

func TestSubscriberCap(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	f := New(Config{MaxSubscribers: 2, Metrics: m})
	if _, err := f.Subscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Subscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Subscribe(); err != ErrTooManySubscribers {
		t.Fatalf("third Subscribe err = %v, want ErrTooManySubscribers", err)
	}
	if got := m.RejectedSubs.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func TestCloseEndsStreams(t *testing.T) {
	f := New(Config{})
	s, err := f.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	f.Publish(Fix{MAC: "aa"})
	f.Close()
	f.Close() // idempotent
	n := 0
	for range s.Fixes() {
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d fixes through close, want 1", n)
	}
	if s.Dropped() {
		t.Fatal("clean close marked subscriber as dropped")
	}
	if _, err := f.Subscribe(); err != ErrClosed {
		t.Fatalf("Subscribe after Close err = %v, want ErrClosed", err)
	}
	f.Publish(Fix{}) // must not panic
}

// TestHandlerStreamsAndCleansUp runs the ndjson handler end to end: a
// client receives fixes as lines, and after it disconnects the
// subscription is torn down — no goroutine or subscriber leaks.
func TestHandlerStreamsAndCleansUp(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	f := New(Config{Metrics: m})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// The subscription exists once the stream is open.
	waitFor(t, func() bool { return f.SubscriberCount() == 1 })

	f.Publish(Fix{MAC: "02:aa", X: 1.5, Y: -2, Confidence: 0.8, CaptureNs: 100, EmitNs: 200, APs: 4})
	f.Publish(Fix{MAC: "02:bb", X: 3, Y: 4})

	sc := bufio.NewScanner(resp.Body)
	var fixes []Fix
	for len(fixes) < 2 && sc.Scan() {
		var fx Fix
		if err := json.Unmarshal(sc.Bytes(), &fx); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		fixes = append(fixes, fx)
	}
	if len(fixes) != 2 || fixes[0].MAC != "02:aa" || fixes[0].EmitNs != 200 || fixes[1].X != 3 {
		t.Fatalf("streamed fixes = %+v", fixes)
	}

	// Disconnect; the handler must unsubscribe on its way out.
	cancel()
	waitFor(t, func() bool { return f.SubscriberCount() == 0 })
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })

	// The feed keeps working for the next subscriber.
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	waitFor(t, func() bool { return f.SubscriberCount() == 1 })
	f.Publish(Fix{MAC: "02:cc"})
	line, err := bufio.NewReader(resp2.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var fx Fix
	if err := json.Unmarshal([]byte(line), &fx); err != nil || fx.MAC != "02:cc" {
		t.Fatalf("second stream line %q err %v", line, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
