package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Fatalf("p25 = %v", p)
	}
	// Interpolation between order statistics.
	if p := Percentile(xs, 10); math.Abs(p-14) > 1e-12 {
		t.Fatalf("p10 = %v, want 14", p)
	}
	// Clamps out-of-range p.
	if p := Percentile(xs, -5); p != 10 {
		t.Fatalf("p<0 = %v", p)
	}
	if p := Percentile(xs, 200); p != 50 {
		t.Fatalf("p>100 = %v", p)
	}
	if p := Percentile([]float64{7}, 50); p != 7 {
		t.Fatalf("singleton percentile = %v", p)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("stddev = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Fatal("empty mean/variance should be NaN")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if !math.IsNaN(NewCDF(nil).At(1)) {
		t.Fatal("empty CDF should be NaN")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		x := c.Quantile(q)
		if math.Abs(c.At(x)-q) > 0.01 {
			t.Fatalf("At(Quantile(%v)) = %v", q, c.At(x))
		}
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	xs, ps := c.Series(10)
	if len(xs) != 10 || len(ps) != 10 {
		t.Fatalf("series lengths %d/%d", len(xs), len(ps))
	}
	if xs[0] != 0 || xs[9] != 9 {
		t.Fatalf("series endpoints %v..%v", xs[0], xs[9])
	}
	for i := 1; i < 10; i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("CDF series not monotone")
		}
	}
	if ps[9] != 1 {
		t.Fatalf("final probability %v, want 1", ps[9])
	}
	if x, p := c.Series(1); x != nil || p != nil {
		t.Fatal("n<2 should return nil")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(82))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 5+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.At(c.Quantile(q))
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("empty summary = %+v", empty)
	}
	if !strings.Contains(s.String(), "median=3.000") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table("Fig X", []string{"spotfi", "arraytrack"}, []Summary{
		Summarize([]float64{0.4, 0.5}),
		Summarize([]float64{1.8, 2.0}),
	})
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "spotfi") || !strings.Contains(out, "arraytrack") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("table has wrong row count:\n%s", out)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	lo, hi := BootstrapMedianCI(xs, 500, 0.95, rng)
	med := Median(xs)
	if !(lo <= med && med <= hi) {
		t.Fatalf("median %v outside CI [%v, %v]", med, lo, hi)
	}
	// The CI of a 400-sample standard normal median is narrow.
	if hi-lo > 0.5 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
	// More data ⇒ narrower CI.
	small := xs[:25]
	lo2, hi2 := BootstrapMedianCI(small, 500, 0.95, rng)
	if hi2-lo2 <= hi-lo {
		t.Fatalf("25-sample CI (%v) not wider than 400-sample (%v)", hi2-lo2, hi-lo)
	}
	// Degenerate inputs.
	if l, h := BootstrapMedianCI(nil, 100, 0.95, rng); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Fatal("empty input should give NaNs")
	}
	if l, _ := BootstrapMedianCI(xs, 5, 0.95, rng); !math.IsNaN(l) {
		t.Fatal("too few iters should give NaNs")
	}
}
