// Package stats provides the summary statistics every SpotFi experiment
// reports: empirical CDFs, percentiles, and distribution summaries.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Median returns the sample median; NaN for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics; NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance; NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Xs are the sorted sample values.
	Xs []float64
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{Xs: s}
}

// At returns the empirical probability P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.Xs) == 0 {
		return math.NaN()
	}
	// Count of samples ≤ x via binary search.
	n := sort.SearchFloat64s(c.Xs, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.Xs))
}

// Quantile returns the value at cumulative probability q ∈ [0,1].
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.Xs, q*100)
}

// Series samples the CDF at n evenly spaced points across the sample range
// and returns (x, P(X≤x)) pairs — the data behind the paper's CDF figures.
func (c *CDF) Series(n int) ([]float64, []float64) {
	if len(c.Xs) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := c.Xs[0], c.Xs[len(c.Xs)-1]
	xs := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// Summary is a compact distribution description.
type Summary struct {
	N                      int
	Mean, Median, P80, P95 float64
	Min, Max               float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Median, s.P80, s.P95, s.Min, s.Max = nan, nan, nan, nan, nan, nan
		return s
	}
	s.Mean = Mean(xs)
	s.Median = Median(xs)
	s.P80 = Percentile(xs, 80)
	s.P95 = Percentile(xs, 95)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.3f p80=%.3f p95=%.3f mean=%.3f min=%.3f max=%.3f",
		s.N, s.Median, s.P80, s.P95, s.Mean, s.Min, s.Max)
}

// Table formats rows of labeled summaries as an aligned text table — the
// output format of the bench harness.
func Table(header string, labels []string, sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", header)
	fmt.Fprintf(&b, "%-24s %6s %10s %10s %10s %10s\n", "series", "n", "median", "p80", "p95", "mean")
	for i, l := range labels {
		s := sums[i]
		fmt.Fprintf(&b, "%-24s %6d %10.3f %10.3f %10.3f %10.3f\n", l, s.N, s.Median, s.P80, s.P95, s.Mean)
	}
	return b.String()
}

// BootstrapMedianCI returns a bootstrap confidence interval for the median
// of xs at the given level (e.g. 0.95), using iters resamples. rng makes
// the interval reproducible. Empty input returns NaNs.
func BootstrapMedianCI(xs []float64, iters int, level float64, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 || iters < 10 || level <= 0 || level >= 1 {
		return math.NaN(), math.NaN()
	}
	meds := make([]float64, iters)
	sample := make([]float64, len(xs))
	for b := 0; b < iters; b++ {
		for i := range sample {
			sample[i] = xs[rng.Intn(len(xs))]
		}
		meds[b] = Median(sample)
	}
	alpha := (1 - level) / 2
	return Percentile(meds, alpha*100), Percentile(meds, (1-alpha)*100)
}
