package cliutil

import (
	"math"
	"strings"
	"testing"
)

func TestAPListSet(t *testing.T) {
	var a APList
	if err := a.Set("0,1.5,2.5,90"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("1, 3, 4, -45"); err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 {
		t.Fatalf("len = %d", len(a))
	}
	if a[0].Pos.X != 1.5 || a[0].Pos.Y != 2.5 {
		t.Fatalf("pos = %v", a[0].Pos)
	}
	if math.Abs(a[0].NormalAngle-math.Pi/2) > 1e-12 {
		t.Fatalf("normal = %v", a[0].NormalAngle)
	}
	if !strings.Contains(a.String(), "0,1.5,2.5,90") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestAPListSetErrors(t *testing.T) {
	var a APList
	for _, bad := range []string{"", "1,2,3", "x,1,2,3", "0,a,2,3", "0,1,b,3", "0,1,2,c"} {
		if err := a.Set(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if err := a.Set("5,0,0,0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("5,1,1,1"); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestParseBounds(t *testing.T) {
	b, err := ParseBounds("0,0,16,10")
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxX != 16 || b.MaxY != 10 {
		t.Fatalf("bounds = %+v", b)
	}
	for _, bad := range []string{"", "1,2,3", "a,0,1,1", "0,0,0,5", "0,5,10,5"} {
		if _, err := ParseBounds(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
