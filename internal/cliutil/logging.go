package cliutil

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"

	"spotfi/internal/obs"
)

// NewLogger builds the structured logger behind the shared -log-format
// flag: "text" for human-readable key=value lines, "json" for one JSON
// object per record (log shippers). Records at Info and above are emitted.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// BuildInfo is the binary's provenance, read from the Go build metadata.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit, when the build was stamped with one.
	Revision string
}

// ReadBuild returns the binary's build provenance, with "unknown" for
// fields the build did not stamp.
func ReadBuild() BuildInfo {
	info := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			info.Revision = s.Value
		}
	}
	return info
}

// String renders the -version flag output; callers prefix the tool name.
func (b BuildInfo) String() string {
	return fmt.Sprintf("%s (%s, rev %s)", b.Version, b.GoVersion, b.Revision)
}

// RegisterBuildInfo registers the conventional spotfi_build_info gauge:
// constant 1, with the binary's provenance as labels, so dashboards can
// join any series against the deployed version.
func RegisterBuildInfo(r *obs.Registry) {
	b := ReadBuild()
	r.Gauge("spotfi_build_info",
		"Build provenance of the running binary (value is always 1).",
		obs.Labels{"version": b.Version, "go": b.GoVersion, "revision": b.Revision}).Set(1)
}
