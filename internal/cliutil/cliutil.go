// Package cliutil holds the flag parsers shared by the SpotFi command-line
// tools: AP pose specs ("id,x,y,normalDeg") and bounds rectangles
// ("minX,minY,maxX,maxY").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"spotfi"
	"spotfi/internal/geom"
)

// APList is a repeatable -ap flag collecting AP poses.
type APList []spotfi.AP

// String implements flag.Value.
func (a *APList) String() string {
	parts := make([]string, len(*a))
	for i, ap := range *a {
		parts[i] = fmt.Sprintf("%d,%g,%g,%g", ap.ID, ap.Pos.X, ap.Pos.Y, geom.Deg(ap.NormalAngle))
	}
	return strings.Join(parts, " ")
}

// Set parses one "id,x,y,normalDeg" spec.
func (a *APList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 4 {
		return fmt.Errorf("want id,x,y,normalDeg, got %q", v)
	}
	id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad AP id %q: %v", parts[0], err)
	}
	for _, ap := range *a {
		if ap.ID == id {
			return fmt.Errorf("duplicate AP id %d", id)
		}
	}
	var nums [3]float64
	for i, s := range parts[1:] {
		nums[i], err = strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad AP coordinate %q: %v", s, err)
		}
	}
	*a = append(*a, spotfi.AP{
		ID:          id,
		Pos:         spotfi.Point{X: nums[0], Y: nums[1]},
		NormalAngle: geom.Rad(nums[2]),
	})
	return nil
}

// ParseBounds parses "minX,minY,maxX,maxY" into a Bounds rectangle.
func ParseBounds(s string) (spotfi.Bounds, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return spotfi.Bounds{}, fmt.Errorf("want minX,minY,maxX,maxY, got %q", s)
	}
	var nums [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return spotfi.Bounds{}, fmt.Errorf("bad bound %q: %v", p, err)
		}
		nums[i] = v
	}
	b := spotfi.Bounds{MinX: nums[0], MinY: nums[1], MaxX: nums[2], MaxY: nums[3]}
	if b.MinX >= b.MaxX || b.MinY >= b.MaxY {
		return spotfi.Bounds{}, fmt.Errorf("empty bounds %q", s)
	}
	return b, nil
}
