// Package debugmux is a thin wrapper over http.ServeMux for the server's
// debug listener: every registered endpoint carries a one-line
// description, and the mux serves an index page at /debug/ (and /)
// listing them — so the debug surface is discoverable from the surface
// itself rather than only from the README.
package debugmux

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"sync"
)

// Entry is one described endpoint on the index page.
type Entry struct {
	Path string `json:"path"`
	Desc string `json:"desc"`
}

// Mux is an http.Handler that registers described endpoints and serves
// an index of them. The zero value is not usable; call New.
type Mux struct {
	mux *http.ServeMux

	mu      sync.Mutex
	entries []Entry
}

// New returns an empty Mux with the index mounted at "/" and "/debug/".
func New() *Mux {
	m := &Mux{mux: http.NewServeMux()}
	m.mux.HandleFunc("/", m.serveIndex)
	// Both spellings serve the index directly; registering the exact path
	// avoids ServeMux's trailing-slash redirect.
	m.mux.HandleFunc("/debug", m.serveIndex)
	m.mux.HandleFunc("/debug/", m.serveIndex)
	return m
}

// Handle registers h at pattern. desc is the one-line description shown
// on the index page; an empty desc registers the handler but keeps it off
// the index (sub-paths of an already-listed endpoint).
func (m *Mux) Handle(pattern, desc string, h http.Handler) {
	m.mux.Handle(pattern, h)
	if desc == "" {
		return
	}
	m.mu.Lock()
	m.entries = append(m.entries, Entry{Path: pattern, Desc: desc})
	m.mu.Unlock()
}

// HandleFunc is Handle for a handler function.
func (m *Mux) HandleFunc(pattern, desc string, h func(http.ResponseWriter, *http.Request)) {
	m.Handle(pattern, desc, http.HandlerFunc(h))
}

// Entries returns the described endpoints, sorted by path.
func (m *Mux) Entries() []Entry {
	m.mu.Lock()
	out := append([]Entry(nil), m.entries...)
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ServeHTTP dispatches to the registered handlers.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// serveIndex renders the endpoint listing. It only answers the exact
// index paths — the catch-all pattern otherwise swallows typos, which
// should 404.
func (m *Mux) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/debug" && r.URL.Path != "/debug/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html><html><head><title>spotfi debug</title>"+
		"<style>body{font-family:monospace;margin:2em}td{padding:.2em 1em .2em 0}</style>"+
		"</head><body><h1>spotfi debug endpoints</h1><table>\n")
	for _, e := range m.Entries() {
		fmt.Fprintf(w, "<tr><td><a href=\"%s\">%s</a></td><td>%s</td></tr>\n",
			html.EscapeString(e.Path), html.EscapeString(e.Path), html.EscapeString(e.Desc))
	}
	fmt.Fprint(w, "</table></body></html>\n")
}
