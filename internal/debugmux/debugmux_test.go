package debugmux

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestIndexListsDescribedEndpoints(t *testing.T) {
	m := New()
	m.HandleFunc("/metrics", "Prometheus-style metrics", func(w http.ResponseWriter, r *http.Request) {})
	m.HandleFunc("/debug/traces", "recent pipeline traces", func(w http.ResponseWriter, r *http.Request) {})
	m.HandleFunc("/debug/pprof/heap", "", func(w http.ResponseWriter, r *http.Request) {}) // hidden

	for _, path := range []string{"/", "/debug", "/debug/"} {
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		body := rec.Body.String()
		if !strings.Contains(body, "/metrics") || !strings.Contains(body, "Prometheus-style metrics") {
			t.Fatalf("index at %s missing described endpoint:\n%s", path, body)
		}
		if !strings.Contains(body, "recent pipeline traces") {
			t.Fatalf("index at %s missing /debug/traces description", path)
		}
		if strings.Contains(body, "pprof/heap") {
			t.Fatalf("index at %s lists an endpoint registered with empty desc", path)
		}
	}
}

func TestEntriesSortedByPath(t *testing.T) {
	m := New()
	m.HandleFunc("/z", "last", func(w http.ResponseWriter, r *http.Request) {})
	m.HandleFunc("/a", "first", func(w http.ResponseWriter, r *http.Request) {})
	es := m.Entries()
	if len(es) != 2 || es[0].Path != "/a" || es[1].Path != "/z" {
		t.Fatalf("entries = %+v, want sorted by path", es)
	}
}

func TestDispatchAndTypo404(t *testing.T) {
	m := New()
	hit := false
	m.HandleFunc("/healthz", "liveness", func(w http.ResponseWriter, r *http.Request) { hit = true })

	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !hit || rec.Code != http.StatusOK {
		t.Fatalf("dispatch to /healthz failed: hit=%v code=%d", hit, rec.Code)
	}

	// A typo under the catch-all must 404, not render the index.
	rec = httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healtz", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /healtz = %d, want 404", rec.Code)
	}
}
