package sim

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/ofdm"
	"spotfi/internal/rf"
)

func phySetup(t *testing.T, target geom.Point, env *Environment, seed int64) *PHYSynthesizer {
	t.Helper()
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(seed))
	ap := AP{ID: 0, Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	link := NewLink(env, ap, target, DefaultLinkConfig(), rng)
	syn, err := NewPHYSynthesizer(link, band, array, ofdm.Default40MHz(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestPHYSynthesizerProducesValidPackets(t *testing.T) {
	syn := phySetup(t, geom.Point{X: 5, Y: 2}, &Environment{}, 61)
	for i := 0; i < 3; i++ {
		p, err := syn.NextPacket("mac")
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("seq %d", p.Seq)
		}
	}
}

func TestPHYSynthesizerPhaseStructure(t *testing.T) {
	// Single LoS path: the derived CSI must carry the AoA phase across
	// antennas — the ratio csi[m+1][n]/csi[m][n] ≈ Φ(θ).
	target := geom.Point{X: 4, Y: 3} // AoA = atan2(3,4) ≈ 36.87°
	syn := phySetup(t, target, &Environment{}, 62)
	syn.Quantize = false
	syn.NoiseFloorDBm = -120
	p, err := syn.NextPacket("mac")
	if err != nil {
		t.Fatal(err)
	}
	wantAoA := math.Atan2(3, 4)
	sinFactor := 2 * math.Pi * syn.Array.SpacingM * syn.Band.CarrierHz / rf.SpeedOfLight
	wantPhase := -sinFactor * math.Sin(wantAoA)
	for n := 0; n < 30; n += 7 {
		for m := 0; m < 2; m++ {
			ratio := p.CSI.Values[m+1][n] / p.CSI.Values[m][n]
			got := math.Atan2(imag(ratio), real(ratio))
			if math.Abs(geom.NormalizeAngle(got-wantPhase)) > 0.03 {
				t.Fatalf("antenna phase at (m=%d,n=%d) = %v, want %v", m, n, got, wantPhase)
			}
		}
	}
}

func TestPHYSynthesizerErrors(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(63))
	if _, err := NewPHYSynthesizer(nil, band, array, ofdm.Default40MHz(), rng); err == nil {
		t.Fatal("nil link accepted")
	}
	link := NewLink(&Environment{}, AP{Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 3, Y: 0}, DefaultLinkConfig(), rng)
	badBand := band
	badBand.SubcarrierSpacingHz = 2e6
	if _, err := NewPHYSynthesizer(link, badBand, array, ofdm.Default40MHz(), rng); err == nil {
		t.Fatal("mismatched spacing accepted")
	}
	badBand2 := band
	badBand2.Subcarriers = 20
	if _, err := NewPHYSynthesizer(link, badBand2, array, ofdm.Default40MHz(), rng); err == nil {
		t.Fatal("mismatched subcarrier count accepted")
	}
}
