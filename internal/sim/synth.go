package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// Impairments configures the hardware distortions applied per packet.
type Impairments struct {
	// DetectionDelayMaxNs is the packet-detection delay: every packet's
	// apparent ToF is inflated by a uniform draw in [0, this]. This is the
	// dominant component of the STO the paper's Algorithm 1 removes.
	DetectionDelayMaxNs float64
	// SFODriftNsPerPacket shifts the sampling time offset between
	// consecutive packets (sampling frequency offset accumulating), so STO
	// changes from packet to packet even without detection jitter.
	SFODriftNsPerPacket float64
	// STOJitterNs adds zero-mean Gaussian jitter to the per-packet STO.
	STOJitterNs float64
	// CommonPhase applies a uniform random carrier phase to the whole
	// packet (CFO residue). It is common to all sensors, so subspace
	// methods are immune to it — included to prove exactly that.
	CommonPhase bool
	// NoiseFloorDBm sets the AWGN power added per sensor.
	NoiseFloorDBm float64
	// Quantize applies Intel-5300-style 8-bit quantization.
	Quantize bool
	// NonDirectAoAJitterRad perturbs the AoA of reflected/scattered paths
	// per packet: people and objects near reflection points move, so
	// indirect paths are less stable packet-to-packet than the direct
	// path — the empirical observation (paper Sec. 3.2.1, Fig. 5c)
	// SpotFi's clustering exploits.
	NonDirectAoAJitterRad float64
	// NonDirectToFJitterNs perturbs the ToF of indirect paths per packet.
	NonDirectToFJitterNs float64
	// NonDirectGainJitterDB perturbs indirect path amplitudes per packet.
	NonDirectGainJitterDB float64
	// AntennaPhaseSigmaRad is the standard deviation of the static
	// per-antenna phase calibration residual. Commodity NICs have unknown
	// phase offsets between RF chains; deployments calibrate them but a
	// residual of several degrees remains and drifts (Phaser, MobiCom'14).
	// The offsets are drawn once per synthesizer (they are static
	// hardware properties) and applied to every packet.
	AntennaPhaseSigmaRad float64
	// AntennaPhaseOffsetsRad, when non-nil (length = antennas), pins the
	// per-antenna offsets instead of drawing them — used to model one
	// AP's fixed hardware across several links (e.g. calibration beacon
	// and target).
	AntennaPhaseOffsetsRad []float64
}

// DefaultImpairments returns impairments representative of an Intel 5300
// deployment.
func DefaultImpairments() Impairments {
	return Impairments{
		DetectionDelayMaxNs:   60,
		SFODriftNsPerPacket:   0.8,
		STOJitterNs:           2,
		CommonPhase:           true,
		NoiseFloorDBm:         -90,
		Quantize:              true,
		NonDirectAoAJitterRad: 0.035, // ≈2°
		NonDirectToFJitterNs:  2.5,
		NonDirectGainJitterDB: 1.5,
		AntennaPhaseSigmaRad:  0.10, // ≈6° residual calibration error
	}
}

// CleanImpairments disables every distortion — useful for algorithm unit
// tests that need the pure signal model.
func CleanImpairments() Impairments {
	return Impairments{NoiseFloorDBm: -1000}
}

// Synthesizer generates per-packet CSI for one link.
type Synthesizer struct {
	Band  rf.Band
	Array rf.Array
	Imp   Impairments

	link *Link
	rng  *rand.Rand

	// antPhase[m] is the static calibration residual of antenna m.
	antPhase []complex128

	packetIndex int
	sfoAccumNs  float64
}

// NewSynthesizer returns a Synthesizer for the link. rng drives all
// per-packet randomness.
func NewSynthesizer(link *Link, band rf.Band, array rf.Array, imp Impairments, rng *rand.Rand) (*Synthesizer, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if err := array.Validate(); err != nil {
		return nil, err
	}
	if link == nil || len(link.Paths) == 0 {
		return nil, fmt.Errorf("sim: link has no propagation paths")
	}
	s := &Synthesizer{Band: band, Array: array, Imp: imp, link: link, rng: rng}
	s.antPhase = make([]complex128, array.Antennas)
	if imp.AntennaPhaseOffsetsRad != nil {
		if len(imp.AntennaPhaseOffsetsRad) != array.Antennas {
			return nil, fmt.Errorf("sim: %d antenna phase offsets for %d antennas",
				len(imp.AntennaPhaseOffsetsRad), array.Antennas)
		}
		for m, off := range imp.AntennaPhaseOffsetsRad {
			s.antPhase[m] = cmplx.Exp(complex(0, off))
		}
	} else {
		for m := range s.antPhase {
			s.antPhase[m] = cmplx.Exp(complex(0, rng.NormFloat64()*imp.AntennaPhaseSigmaRad))
		}
	}
	return s, nil
}

// Link returns the link being synthesized.
func (s *Synthesizer) Link() *Link { return s.link }

// NextPacket synthesizes the CSI matrix and RSSI for the next packet on the
// link, applying all configured impairments.
func (s *Synthesizer) NextPacket(targetMAC string) *csi.Packet {
	m := s.Array.Antennas
	n := s.Band.Subcarriers
	mat := csi.NewMatrix(m, n)

	// Per-packet STO: detection delay + accumulated SFO drift + jitter.
	stoNs := s.rng.Float64()*s.Imp.DetectionDelayMaxNs + s.sfoAccumNs + s.rng.NormFloat64()*s.Imp.STOJitterNs
	s.sfoAccumNs += s.Imp.SFODriftNsPerPacket
	stoSec := stoNs * 1e-9

	commonPhase := complex(1, 0)
	if s.Imp.CommonPhase {
		commonPhase = cmplx.Exp(complex(0, s.rng.Float64()*2*math.Pi))
	}

	fd := s.Band.SubcarrierSpacingHz
	sinFactor := 2 * math.Pi * s.Array.SpacingM * s.Band.CarrierHz / rf.SpeedOfLight

	var signalPowerMw float64
	for _, p := range s.link.Paths {
		aoa, tof, gainDBm := p.AoA, p.ToF, p.GainDBm
		if p.Kind != Direct {
			aoa += s.rng.NormFloat64() * s.Imp.NonDirectAoAJitterRad
			tof += math.Abs(s.rng.NormFloat64()) * s.Imp.NonDirectToFJitterNs * 1e-9
			gainDBm += s.rng.NormFloat64() * s.Imp.NonDirectGainJitterDB
		}
		ampl := math.Sqrt(rf.DBmToMilliwatt(gainDBm))
		signalPowerMw += ampl * ampl
		gamma := complex(ampl, 0) * cmplx.Exp(complex(0, p.PhaseRad))

		// Φ(θ): phase step between adjacent antennas (Eq. 1).
		phi := cmplx.Exp(complex(0, -sinFactor*math.Sin(aoa)))
		// Ω(τ): phase step between adjacent subcarriers (Eq. 6), with the
		// packet's STO folded into an apparent ToF — exactly how lack of
		// time synchronization corrupts commodity measurements (Sec. 3.2).
		omega := cmplx.Exp(complex(0, -2*math.Pi*fd*(tof+stoSec)))

		antPhase := complex(1, 0)
		for a := 0; a < m; a++ {
			sensor := gamma * antPhase
			for k := 0; k < n; k++ {
				mat.Values[a][k] += sensor
				sensor *= omega
			}
			antPhase *= phi
		}
	}

	// AWGN per sensor.
	noiseMw := rf.DBmToMilliwatt(s.Imp.NoiseFloorDBm)
	sigma := math.Sqrt(noiseMw / 2)
	for a := 0; a < m; a++ {
		chainPhase := commonPhase * s.antPhase[a]
		for k := 0; k < n; k++ {
			noise := complex(s.rng.NormFloat64()*sigma, s.rng.NormFloat64()*sigma)
			mat.Values[a][k] = mat.Values[a][k]*chainPhase + noise
		}
	}

	// RSSI: total received power including the noise floor, in dBm.
	rssi := rf.MilliwattToDBm(signalPowerMw + noiseMw)

	if s.Imp.Quantize {
		mat.Quantize()
	}

	pkt := &csi.Packet{
		APID:        s.link.AP.ID,
		TargetMAC:   targetMAC,
		Seq:         uint64(s.packetIndex),
		TimestampNs: int64(s.packetIndex) * 100_000_000, // 100 ms spacing, as in the paper's method
		RSSIdBm:     rssi,
		CSI:         mat,
	}
	s.packetIndex++
	return pkt
}

// Burst synthesizes count consecutive packets.
func (s *Synthesizer) Burst(targetMAC string, count int) []*csi.Packet {
	out := make([]*csi.Packet, count)
	for i := range out {
		out[i] = s.NextPacket(targetMAC)
	}
	return out
}
