// Package sim is SpotFi's physical-layer substitute for the Intel 5300
// testbed: it synthesizes per-packet CSI matrices and RSSI for a target
// transmitting to multi-antenna APs across a multipath indoor environment.
//
// The synthesis follows the paper's signal model exactly: each propagation
// path k contributes γ_k · Φ(θ_k)^m · Ω(τ_k)^n to the CSI of antenna m,
// subcarrier n (Eqs. 1–7), on top of which the impairments real hardware
// adds — sampling time offset (STO), sampling frequency offset (SFO) drift,
// packet detection delay, a common carrier phase, AWGN, and 8-bit
// quantization — are applied per packet. Every SpotFi algorithm therefore
// sees inputs with the same structure and the same distortions it would see
// on hardware.
package sim

import (
	"math"

	"spotfi/internal/geom"
)

// Wall is a straight wall segment. Walls both block (attenuate) paths that
// cross them and act as specular reflectors.
type Wall struct {
	Seg geom.Segment
	// LossDB is the attenuation a ray crossing the wall suffers.
	LossDB float64
	// ReflectLossDB is the attenuation a ray bouncing off the wall
	// suffers. A negative value marks the wall as non-reflective.
	ReflectLossDB float64
}

// Scatterer is a point object (furniture, pillar, person) that re-radiates
// the signal, creating an extra multipath component.
type Scatterer struct {
	Pos geom.Point
	// LossDB is the extra attenuation of the scattered path relative to
	// free-space over the same total distance.
	LossDB float64
}

// Environment is the floor plan the simulator ray-traces against.
type Environment struct {
	Walls      []Wall
	Scatterers []Scatterer
}

// CrossLossDB sums the blocking loss of every wall the segment from a to b
// crosses. A wall whose segment merely touches at the ray endpoints still
// counts; in the testbed geometry endpoints never sit exactly on walls.
func (e *Environment) CrossLossDB(a, b geom.Point) float64 {
	ray := geom.Segment{A: a, B: b}
	var loss float64
	for _, w := range e.Walls {
		if ray.Intersects(w.Seg) {
			loss += w.LossDB
		}
	}
	return loss
}

// crossLossDBExcept is CrossLossDB skipping wall index skip — used for
// reflection legs so the reflecting wall itself is not double-counted as an
// obstruction.
func (e *Environment) crossLossDBExcept(a, b geom.Point, skip int) float64 {
	ray := geom.Segment{A: a, B: b}
	var loss float64
	for i, w := range e.Walls {
		if i == skip {
			continue
		}
		if ray.Intersects(w.Seg) {
			loss += w.LossDB
		}
	}
	return loss
}

// LoS reports whether the straight segment between a and b crosses no wall.
func (e *Environment) LoS(a, b geom.Point) bool {
	return e.CrossLossDB(a, b) == 0
}

// PathKind labels how a multipath component reached the AP.
type PathKind int

// Path kinds.
const (
	Direct PathKind = iota
	Reflected
	Scattered
)

func (k PathKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Reflected:
		return "reflected"
	case Scattered:
		return "scattered"
	default:
		return "unknown"
	}
}

// Path is one resolved propagation path from the target to an AP.
type Path struct {
	Kind PathKind
	// AoA is the angle of arrival in radians relative to the AP array
	// normal, folded into [−π/2, π/2] (a uniform linear array cannot
	// distinguish front from back).
	AoA float64
	// ToF is the true time of flight in seconds.
	ToF float64
	// GainDBm is the received power of the path in dBm.
	GainDBm float64
	// PhaseRad is the propagation phase of the path at the first antenna
	// and subcarrier, fixed per link.
	PhaseRad float64
}

// foldAoA maps an arbitrary arrival angle (relative to the array normal)
// onto the ULA-observable range [−π/2, π/2]: a linear array only measures
// sin(θ), so a source behind the array aliases onto its mirror in front.
func foldAoA(theta float64) float64 {
	return math.Asin(math.Sin(geom.NormalizeAngle(theta)))
}
