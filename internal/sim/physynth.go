package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"spotfi/internal/csi"
	"spotfi/internal/ofdm"
	"spotfi/internal/rf"
)

// PHYSynthesizer derives CSI the way a NIC does instead of evaluating the
// channel model in closed form: it transmits the OFDM training symbol
// through a per-antenna time-domain multipath channel, runs
// correlation-based packet detection, and least-squares-estimates the
// channel at the reported subcarriers. Sampling time offset is therefore
// *emergent* — it is whatever residual delay the detector leaves — rather
// than injected, making this the strongest validation target for
// Algorithm 1 and the joint estimator.
//
// It is slower than Synthesizer (an FFT and a correlation per packet) and
// is used in cross-validation tests and the PHY example rather than the
// bulk experiments.
type PHYSynthesizer struct {
	phy   *ofdm.PHY
	Band  rf.Band
	Array rf.Array

	link *Link
	rng  *rand.Rand

	// NoiseFloorDBm sets the per-sample AWGN power (default −90).
	NoiseFloorDBm float64
	// TxDelayMaxNs randomizes the transmit instant within the receive
	// window, so packet detection has something real to find (default 100).
	TxDelayMaxNs float64
	// Quantize applies 8-bit quantization to the derived CSI.
	Quantize bool

	packetIndex int
}

// NewPHYSynthesizer builds a PHY-level synthesizer for the link. The
// band's subcarrier spacing must match the PHY numerology.
func NewPHYSynthesizer(link *Link, band rf.Band, array rf.Array, phy *ofdm.PHY, rng *rand.Rand) (*PHYSynthesizer, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if err := array.Validate(); err != nil {
		return nil, err
	}
	if err := phy.Validate(); err != nil {
		return nil, err
	}
	if link == nil || len(link.Paths) == 0 {
		return nil, fmt.Errorf("sim: link has no propagation paths")
	}
	if len(phy.UsedBins) != band.Subcarriers {
		return nil, fmt.Errorf("sim: PHY reports %d subcarriers, band has %d", len(phy.UsedBins), band.Subcarriers)
	}
	if math.Abs(phy.SubcarrierSpacingHz()-band.SubcarrierSpacingHz) > 1 {
		return nil, fmt.Errorf("sim: PHY spacing %v Hz != band spacing %v Hz",
			phy.SubcarrierSpacingHz(), band.SubcarrierSpacingHz)
	}
	return &PHYSynthesizer{
		phy:           phy,
		Band:          band,
		Array:         array,
		link:          link,
		rng:           rng,
		NoiseFloorDBm: -90,
		TxDelayMaxNs:  100,
		Quantize:      true,
	}, nil
}

// NextPacket synthesizes one packet end to end through the PHY.
func (s *PHYSynthesizer) NextPacket(targetMAC string) (*csi.Packet, error) {
	sym, err := s.phy.TrainingSymbol()
	if err != nil {
		return nil, err
	}
	// Unknown transmit instant, common to all antennas (one sampling
	// clock per card).
	txDelay := s.rng.Float64() * s.TxDelayMaxNs * 1e-9

	sinFactor := 2 * math.Pi * s.Array.SpacingM * s.Band.CarrierHz / rf.SpeedOfLight

	m := s.Array.Antennas
	rxPerAnt := make([][]complex128, m)
	var signalPowerMw float64
	for a := 0; a < m; a++ {
		tc := &ofdm.TapChannel{}
		for _, p := range s.link.Paths {
			ampl := math.Sqrt(rf.DBmToMilliwatt(p.GainDBm))
			if a == 0 {
				signalPowerMw += ampl * ampl
			}
			gain := complex(ampl, 0) *
				cmplx.Exp(complex(0, p.PhaseRad)) *
				cmplx.Exp(complex(0, -sinFactor*math.Sin(p.AoA)*float64(a)))
			tc.DelayS = append(tc.DelayS, p.ToF+txDelay)
			tc.Gain = append(tc.Gain, gain)
		}
		rx, err := tc.Apply(sym, s.phy.SampleRateHz)
		if err != nil {
			return nil, err
		}
		// AWGN.
		sigma := math.Sqrt(rf.DBmToMilliwatt(s.NoiseFloorDBm) / 2)
		for i := range rx {
			rx[i] += complex(s.rng.NormFloat64()*sigma, s.rng.NormFloat64()*sigma)
		}
		rxPerAnt[a] = rx
	}

	// One detector for the card (all RF chains share the sampling clock):
	// detect on antenna 0, reuse the index everywhere.
	detectIdx, err := s.phy.DetectPreamble(rxPerAnt[0], 0)
	if err != nil {
		return nil, err
	}

	mat := csi.NewMatrix(m, s.Band.Subcarriers)
	for a := 0; a < m; a++ {
		est, err := s.phy.EstimateCSI(rxPerAnt[a], detectIdx)
		if err != nil {
			return nil, err
		}
		copy(mat.Values[a], est)
	}
	if s.Quantize {
		mat.Quantize()
	}
	rssi := rf.MilliwattToDBm(signalPowerMw + rf.DBmToMilliwatt(s.NoiseFloorDBm))

	pkt := &csi.Packet{
		APID:        s.link.AP.ID,
		TargetMAC:   targetMAC,
		Seq:         uint64(s.packetIndex),
		TimestampNs: int64(s.packetIndex) * 100_000_000,
		RSSIdBm:     rssi,
		CSI:         mat,
	}
	s.packetIndex++
	return pkt, nil
}
