package sim

import (
	"math"
	"math/rand"
	"sort"

	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

// AP is an access point with a uniform linear antenna array.
type AP struct {
	ID  int
	Pos geom.Point
	// NormalAngle is the direction the array broadside faces, in radians
	// from +X. AoAs are measured relative to this normal.
	NormalAngle float64
}

// AoATo returns the folded AoA at the AP of a ray arriving from point p.
func (ap AP) AoATo(p geom.Point) float64 {
	dir := p.Sub(ap.Pos).Angle()
	return foldAoA(dir - ap.NormalAngle)
}

// LinkConfig controls path enumeration and gain assignment.
type LinkConfig struct {
	// PathLoss maps traveled distance to received power for an
	// unobstructed path.
	PathLoss rf.PathLoss
	// MaxPaths caps how many multipath components a link keeps (the
	// strongest survive). Indoor environments have 6–8 significant
	// reflectors (paper Sec. 3.1); the cap models the rest vanishing
	// into the noise floor.
	MaxPaths int
	// MinGainDBm drops paths weaker than this absolute floor.
	MinGainDBm float64
	// DirectCutoffDB removes the direct path entirely when the walls on
	// the straight line attenuate it by at least this much: past a couple
	// of walls no coherent direct component survives indoors, which is
	// the paper's "direct path ... may not even exist" regime (Sec. 3.2).
	// 0 disables the cutoff.
	DirectCutoffDB float64
}

// DefaultLinkConfig returns the configuration used by the testbed.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		PathLoss:       rf.DefaultPathLoss(),
		MaxPaths:       8,
		MinGainDBm:     -95,
		DirectCutoffDB: 22,
	}
}

// Link holds the resolved multipath between one target position and one AP.
type Link struct {
	AP     AP
	Target geom.Point
	// Paths is sorted by descending gain. Paths[i].Kind == Direct appears
	// at most once.
	Paths []Path
}

// NewLink ray-traces the environment and returns the multipath profile of
// the target→AP link. rng supplies the per-path propagation phases (fixed
// for the lifetime of the link, as they are in a static environment).
func NewLink(env *Environment, ap AP, target geom.Point, cfg LinkConfig, rng *rand.Rand) *Link {
	var paths []Path

	// Direct path: present unless the blocking loss exceeds the cutoff.
	d := target.Dist(ap.Pos)
	loss := env.CrossLossDB(target, ap.Pos)
	if d > 0 && (cfg.DirectCutoffDB <= 0 || loss < cfg.DirectCutoffDB) {
		paths = append(paths, Path{
			Kind:     Direct,
			AoA:      ap.AoATo(target),
			ToF:      d / rf.SpeedOfLight,
			GainDBm:  cfg.PathLoss.RSSIdBm(d) - loss,
			PhaseRad: rng.Float64() * 2 * math.Pi,
		})
	}

	// Single-bounce specular reflections off each reflective wall, via the
	// image method: mirror the target across the wall line; the specular
	// point is where image→AP crosses the wall segment.
	for i, w := range env.Walls {
		if w.ReflectLossDB < 0 {
			continue
		}
		img := w.Seg.Reflect(target)
		spec, ok := w.Seg.Intersection(geom.Segment{A: img, B: ap.Pos})
		if !ok {
			continue
		}
		total := target.Dist(spec) + spec.Dist(ap.Pos)
		if total <= 0 {
			continue
		}
		loss := w.ReflectLossDB +
			env.crossLossDBExcept(target, spec, i) +
			env.crossLossDBExcept(spec, ap.Pos, i)
		paths = append(paths, Path{
			Kind:     Reflected,
			AoA:      ap.AoATo(spec),
			ToF:      total / rf.SpeedOfLight,
			GainDBm:  cfg.PathLoss.RSSIdBm(total) - loss,
			PhaseRad: rng.Float64() * 2 * math.Pi,
		})
	}

	// Point scatterers: target → scatterer → AP.
	for _, s := range env.Scatterers {
		total := target.Dist(s.Pos) + s.Pos.Dist(ap.Pos)
		if total <= 0 {
			continue
		}
		loss := s.LossDB +
			env.CrossLossDB(target, s.Pos) +
			env.CrossLossDB(s.Pos, ap.Pos)
		paths = append(paths, Path{
			Kind:     Scattered,
			AoA:      ap.AoATo(s.Pos),
			ToF:      total / rf.SpeedOfLight,
			GainDBm:  cfg.PathLoss.RSSIdBm(total) - loss,
			PhaseRad: rng.Float64() * 2 * math.Pi,
		})
	}

	sort.Slice(paths, func(a, b int) bool { return paths[a].GainDBm > paths[b].GainDBm })
	// Drop sub-floor paths, keep at most MaxPaths.
	kept := paths[:0]
	for _, p := range paths {
		if p.GainDBm < cfg.MinGainDBm {
			continue
		}
		kept = append(kept, p)
		if cfg.MaxPaths > 0 && len(kept) == cfg.MaxPaths {
			break
		}
	}
	return &Link{AP: ap, Target: target, Paths: kept}
}

// DirectPath returns the direct path and whether the link has one.
func (l *Link) DirectPath() (Path, bool) {
	for _, p := range l.Paths {
		if p.Kind == Direct {
			return p, true
		}
	}
	return Path{}, false
}

// StrongestPath returns the highest-gain path; ok is false for an empty
// link.
func (l *Link) StrongestPath() (Path, bool) {
	if len(l.Paths) == 0 {
		return Path{}, false
	}
	return l.Paths[0], true
}

// HasStrongDirect reports whether the link's direct path exists and is
// within marginDB of the strongest path — the paper's working definition of
// a LoS link for evaluation purposes (Sec. 4.4.1).
func (l *Link) HasStrongDirect(marginDB float64) bool {
	d, ok := l.DirectPath()
	if !ok || len(l.Paths) == 0 {
		return false
	}
	return d.GainDBm >= l.Paths[0].GainDBm-marginDB
}
