package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

func testEnv() *Environment {
	return &Environment{
		Walls: []Wall{
			{Seg: geom.Segment{A: geom.Point{X: 0, Y: 10}, B: geom.Point{X: 20, Y: 10}}, LossDB: 12, ReflectLossDB: 7},
			{Seg: geom.Segment{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 20, Y: 0}}, LossDB: 12, ReflectLossDB: 7},
		},
		Scatterers: []Scatterer{
			{Pos: geom.Point{X: 15, Y: 5}, LossDB: 15},
		},
	}
}

func TestEnvironmentLoS(t *testing.T) {
	env := testEnv()
	if !env.LoS(geom.Point{X: 1, Y: 5}, geom.Point{X: 10, Y: 5}) {
		t.Fatal("clear path reported blocked")
	}
	if env.LoS(geom.Point{X: 5, Y: 5}, geom.Point{X: 5, Y: 15}) {
		t.Fatal("path through wall reported clear")
	}
}

func TestCrossLossAccumulates(t *testing.T) {
	env := testEnv()
	// Path through both walls.
	loss := env.CrossLossDB(geom.Point{X: 5, Y: -5}, geom.Point{X: 5, Y: 15})
	if math.Abs(loss-24) > 1e-9 {
		t.Fatalf("loss through two walls = %v, want 24", loss)
	}
}

func TestFoldAoA(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi / 4, math.Pi / 4},
		{-math.Pi / 3, -math.Pi / 3},
		{math.Pi - 0.3, 0.3},   // behind the array aliases to the front mirror
		{-math.Pi + 0.2, -0.2}, // behind, other side
		{math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := foldAoA(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("foldAoA(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAPAoATo(t *testing.T) {
	ap := AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0} // normal along +X
	if got := ap.AoATo(geom.Point{X: 5, Y: 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("broadside AoA = %v, want 0", got)
	}
	got := ap.AoATo(geom.Point{X: 5, Y: 5})
	if math.Abs(got-math.Pi/4) > 1e-12 {
		t.Fatalf("45° AoA = %v", got)
	}
}

func TestNewLinkDirectPathGeometry(t *testing.T) {
	env := &Environment{}
	ap := AP{ID: 1, Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	target := geom.Point{X: 3, Y: 4}
	rng := rand.New(rand.NewSource(1))
	link := NewLink(env, ap, target, DefaultLinkConfig(), rng)
	d, ok := link.DirectPath()
	if !ok {
		t.Fatal("no direct path in empty environment")
	}
	wantToF := 5.0 / rf.SpeedOfLight
	if math.Abs(d.ToF-wantToF) > 1e-15 {
		t.Fatalf("direct ToF = %v, want %v", d.ToF, wantToF)
	}
	wantAoA := math.Atan2(4, 3)
	if math.Abs(d.AoA-wantAoA) > 1e-12 {
		t.Fatalf("direct AoA = %v, want %v", d.AoA, wantAoA)
	}
}

func TestNewLinkReflectionImageMethod(t *testing.T) {
	// Single mirror wall along y=10; AP and target both below it.
	env := &Environment{Walls: []Wall{
		{Seg: geom.Segment{A: geom.Point{X: -100, Y: 10}, B: geom.Point{X: 100, Y: 10}}, LossDB: 12, ReflectLossDB: 6},
	}}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: math.Pi / 2}
	target := geom.Point{X: 6, Y: 0}
	rng := rand.New(rand.NewSource(2))
	link := NewLink(env, ap, target, DefaultLinkConfig(), rng)

	var refl *Path
	for i := range link.Paths {
		if link.Paths[i].Kind == Reflected {
			refl = &link.Paths[i]
			break
		}
	}
	if refl == nil {
		t.Fatal("no reflected path found")
	}
	// Image of target is (6, 20); reflected path length = |(0,0)−(6,20)|.
	wantLen := math.Hypot(6, 20)
	if math.Abs(refl.ToF*rf.SpeedOfLight-wantLen) > 1e-9 {
		t.Fatalf("reflected length = %v, want %v", refl.ToF*rf.SpeedOfLight, wantLen)
	}
	// Reflected path is longer and weaker than the direct path.
	d, _ := link.DirectPath()
	if refl.ToF <= d.ToF {
		t.Fatal("reflected ToF not larger than direct")
	}
	if refl.GainDBm >= d.GainDBm {
		t.Fatal("reflected gain not weaker than direct")
	}
}

func TestNewLinkNoSpecularPointNoReflection(t *testing.T) {
	// Short wall far to the side: image ray misses the wall segment.
	env := &Environment{Walls: []Wall{
		{Seg: geom.Segment{A: geom.Point{X: 50, Y: 10}, B: geom.Point{X: 51, Y: 10}}, LossDB: 12, ReflectLossDB: 6},
	}}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}}
	rng := rand.New(rand.NewSource(3))
	link := NewLink(env, ap, geom.Point{X: 2, Y: 0}, DefaultLinkConfig(), rng)
	for _, p := range link.Paths {
		if p.Kind == Reflected {
			t.Fatal("reflection created without a valid specular point")
		}
	}
}

func TestNewLinkNonReflectiveWall(t *testing.T) {
	env := &Environment{Walls: []Wall{
		{Seg: geom.Segment{A: geom.Point{X: -100, Y: 10}, B: geom.Point{X: 100, Y: 10}}, LossDB: 12, ReflectLossDB: -1},
	}}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}}
	rng := rand.New(rand.NewSource(4))
	link := NewLink(env, ap, geom.Point{X: 6, Y: 0}, DefaultLinkConfig(), rng)
	for _, p := range link.Paths {
		if p.Kind == Reflected {
			t.Fatal("non-reflective wall produced a reflection")
		}
	}
}

func TestNewLinkScatterer(t *testing.T) {
	env := &Environment{Scatterers: []Scatterer{{Pos: geom.Point{X: 0, Y: 5}, LossDB: 10}}}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	target := geom.Point{X: 5, Y: 0}
	rng := rand.New(rand.NewSource(5))
	link := NewLink(env, ap, target, DefaultLinkConfig(), rng)
	var sc *Path
	for i := range link.Paths {
		if link.Paths[i].Kind == Scattered {
			sc = &link.Paths[i]
		}
	}
	if sc == nil {
		t.Fatal("no scattered path")
	}
	wantLen := math.Hypot(5, 5) + 5
	if math.Abs(sc.ToF*rf.SpeedOfLight-wantLen) > 1e-9 {
		t.Fatalf("scattered length = %v, want %v", sc.ToF*rf.SpeedOfLight, wantLen)
	}
	// Scattered path arrives from the scatterer: AoA = +90° off normal.
	if math.Abs(sc.AoA-math.Pi/2) > 1e-9 {
		t.Fatalf("scattered AoA = %v, want π/2", sc.AoA)
	}
}

func TestLinkPathOrderingAndCaps(t *testing.T) {
	env := testEnv()
	ap := AP{Pos: geom.Point{X: 2, Y: 5}, NormalAngle: 0}
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultLinkConfig()
	cfg.MaxPaths = 2
	link := NewLink(env, ap, geom.Point{X: 10, Y: 5}, cfg, rng)
	if len(link.Paths) > 2 {
		t.Fatalf("MaxPaths not enforced: %d paths", len(link.Paths))
	}
	for i := 1; i < len(link.Paths); i++ {
		if link.Paths[i].GainDBm > link.Paths[i-1].GainDBm {
			t.Fatal("paths not sorted by descending gain")
		}
	}
}

func TestLinkMinGainFloor(t *testing.T) {
	env := &Environment{}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}}
	cfg := DefaultLinkConfig()
	cfg.MinGainDBm = 0 // impossible floor: everything dropped
	rng := rand.New(rand.NewSource(7))
	link := NewLink(env, ap, geom.Point{X: 5, Y: 0}, cfg, rng)
	if len(link.Paths) != 0 {
		t.Fatalf("MinGain floor not enforced: %d paths", len(link.Paths))
	}
}

func TestHasStrongDirect(t *testing.T) {
	env := testEnv()
	rng := rand.New(rand.NewSource(8))
	// LoS link in the open area.
	losLink := NewLink(env, AP{Pos: geom.Point{X: 1, Y: 5}}, geom.Point{X: 8, Y: 5}, DefaultLinkConfig(), rng)
	if !losLink.HasStrongDirect(3) {
		t.Fatal("LoS link not classified as strong-direct")
	}
	// Blocked link: target on the far side of a 12 dB wall.
	nlosLink := NewLink(env, AP{Pos: geom.Point{X: 5, Y: 5}}, geom.Point{X: 5, Y: 12}, DefaultLinkConfig(), rng)
	d, ok := nlosLink.DirectPath()
	if ok {
		// Direct survives but attenuated; with a tight margin it is weak
		// relative to where it would be unobstructed.
		unobstructed := DefaultLinkConfig().PathLoss.RSSIdBm(nlosLink.AP.Pos.Dist(nlosLink.Target))
		if d.GainDBm >= unobstructed {
			t.Fatal("wall did not attenuate the direct path")
		}
	}
}

func TestSynthesizerCleanSignalModel(t *testing.T) {
	// One path, no impairments: CSI must follow γ·Φ^m·Ω^n exactly.
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &Environment{}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	target := geom.Point{X: 4, Y: 3}
	rng := rand.New(rand.NewSource(9))
	link := NewLink(env, ap, target, DefaultLinkConfig(), rng)
	syn, err := NewSynthesizer(link, band, array, CleanImpairments(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pkt := syn.NextPacket("mac")

	p := link.Paths[0]
	phi := cmplx.Exp(complex(0, -2*math.Pi*array.SpacingM*math.Sin(p.AoA)*band.CarrierHz/rf.SpeedOfLight))
	omega := cmplx.Exp(complex(0, -2*math.Pi*band.SubcarrierSpacingHz*p.ToF))
	base := pkt.CSI.Values[0][0]
	if cmplx.Abs(base) == 0 {
		t.Fatal("zero CSI")
	}
	for m := 0; m < array.Antennas; m++ {
		for n := 0; n < band.Subcarriers; n++ {
			want := base
			for i := 0; i < m; i++ {
				want *= phi
			}
			for i := 0; i < n; i++ {
				want *= omega
			}
			got := pkt.CSI.Values[m][n]
			if cmplx.Abs(got-want) > 1e-9*cmplx.Abs(base) {
				t.Fatalf("CSI(%d,%d) = %v, want %v", m, n, got, want)
			}
		}
	}
}

func TestSynthesizerSTOCommonAcrossAntennas(t *testing.T) {
	// With detection delay only (no noise/quantization), the phase ramp
	// added on top of the clean model must be identical for all antennas.
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &Environment{}
	ap := AP{Pos: geom.Point{X: 0, Y: 0}}
	rng := rand.New(rand.NewSource(10))
	link := NewLink(env, ap, geom.Point{X: 5, Y: 1}, DefaultLinkConfig(), rng)
	imp := CleanImpairments()
	imp.DetectionDelayMaxNs = 50
	syn, err := NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	pkt := syn.NextPacket("mac")
	// Ratio of subcarrier n to subcarrier 0 must be the same complex
	// factor on every antenna (single path ⇒ pure ramp; STO common).
	for n := 1; n < band.Subcarriers; n++ {
		r0 := pkt.CSI.Values[0][n] / pkt.CSI.Values[0][0]
		for m := 1; m < array.Antennas; m++ {
			rm := pkt.CSI.Values[m][n] / pkt.CSI.Values[m][0]
			if cmplx.Abs(r0-rm) > 1e-9 {
				t.Fatalf("STO ramp differs across antennas at subcarrier %d", n)
			}
		}
	}
}

func TestSynthesizerSTOChangesAcrossPackets(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &Environment{}
	rng := rand.New(rand.NewSource(11))
	link := NewLink(env, AP{Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 5, Y: 1}, DefaultLinkConfig(), rng)
	imp := CleanImpairments()
	imp.DetectionDelayMaxNs = 50
	imp.SFODriftNsPerPacket = 1
	syn, err := NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p1 := syn.NextPacket("mac")
	p2 := syn.NextPacket("mac")
	// Subcarrier ramps differ between the packets (different STO).
	r1 := p1.CSI.Values[0][1] / p1.CSI.Values[0][0]
	r2 := p2.CSI.Values[0][1] / p2.CSI.Values[0][0]
	if cmplx.Abs(r1-r2) < 1e-12 {
		t.Fatal("STO did not change between packets")
	}
}

func TestSynthesizerRSSIPlausible(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := testEnv()
	rng := rand.New(rand.NewSource(12))
	link := NewLink(env, AP{Pos: geom.Point{X: 1, Y: 5}}, geom.Point{X: 10, Y: 5}, DefaultLinkConfig(), rng)
	syn, err := NewSynthesizer(link, band, array, DefaultImpairments(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pkt := syn.NextPacket("mac")
	if pkt.RSSIdBm > -20 || pkt.RSSIdBm < -95 {
		t.Fatalf("implausible RSSI %v dBm", pkt.RSSIdBm)
	}
	if err := pkt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizerQuantization(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &Environment{}
	rng := rand.New(rand.NewSource(13))
	link := NewLink(env, AP{Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 5, Y: 1}, DefaultLinkConfig(), rng)
	imp := DefaultImpairments()
	syn, err := NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	pkt := syn.NextPacket("mac")
	for _, row := range pkt.CSI.Values {
		for _, v := range row {
			if real(v) != math.Trunc(real(v)) || imag(v) != math.Trunc(imag(v)) {
				t.Fatal("quantized CSI has fractional components")
			}
		}
	}
}

func TestSynthesizerErrors(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(14))
	if _, err := NewSynthesizer(nil, band, array, DefaultImpairments(), rng); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := NewSynthesizer(&Link{}, band, array, DefaultImpairments(), rng); err == nil {
		t.Fatal("empty link accepted")
	}
	badBand := band
	badBand.Subcarriers = 1
	env := &Environment{}
	link := NewLink(env, AP{Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 5, Y: 1}, DefaultLinkConfig(), rng)
	if _, err := NewSynthesizer(link, badBand, array, DefaultImpairments(), rng); err == nil {
		t.Fatal("bad band accepted")
	}
}

func TestBurstSequenceNumbers(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &Environment{}
	rng := rand.New(rand.NewSource(15))
	link := NewLink(env, AP{ID: 3, Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 5, Y: 1}, DefaultLinkConfig(), rng)
	syn, err := NewSynthesizer(link, band, array, DefaultImpairments(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pkts := syn.Burst("mac", 5)
	for i, p := range pkts {
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
		if p.APID != 3 {
			t.Fatalf("packet %d has APID %d", i, p.APID)
		}
	}
}

func TestPathKindString(t *testing.T) {
	if Direct.String() != "direct" || Reflected.String() != "reflected" ||
		Scattered.String() != "scattered" || PathKind(99).String() != "unknown" {
		t.Fatal("PathKind.String mismatch")
	}
}
