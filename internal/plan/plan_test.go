package plan

import (
	"math"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/locate"
)

func square4() []AP {
	center := geom.Point{X: 5, Y: 5}
	pos := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	aps := make([]AP, len(pos))
	for i, p := range pos {
		aps[i] = AP{Pos: p, NormalAngle: center.Sub(p).Angle()}
	}
	return aps
}

func TestExpectedErrorCenterBetterThanEdge(t *testing.T) {
	aps := square4()
	cfg := DefaultConfig()
	center, err := ExpectedError(geom.Point{X: 5, Y: 5}, aps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := ExpectedError(geom.Point{X: 9.4, Y: 5}, aps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(center, 1) || center <= 0 {
		t.Fatalf("center bound = %v", center)
	}
	if center >= edge {
		t.Fatalf("center (%v) should beat edge (%v)", center, edge)
	}
}

func TestExpectedErrorScalesWithAoAStd(t *testing.T) {
	aps := square4()
	p := geom.Point{X: 5, Y: 5}
	a := DefaultConfig()
	b := a
	b.AoAStdRad = 2 * a.AoAStdRad
	ea, _ := ExpectedError(p, aps, a)
	eb, _ := ExpectedError(p, aps, b)
	if math.Abs(eb-2*ea) > 1e-9*ea {
		t.Fatalf("CRLB should scale linearly with σ: %v vs %v", eb, 2*ea)
	}
}

func TestExpectedErrorCollinearUnobservable(t *testing.T) {
	// Two APs and the target on one line: bearings are parallel.
	aps := []AP{
		{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0},
		{Pos: geom.Point{X: 2, Y: 0}, NormalAngle: 0},
	}
	e, err := ExpectedError(geom.Point{X: 10, Y: 0}, aps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Fatalf("collinear geometry should be unobservable, got %v", e)
	}
}

func TestExpectedErrorSingleAPUnobservable(t *testing.T) {
	aps := []AP{{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}}
	e, err := ExpectedError(geom.Point{X: 5, Y: 1}, aps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Fatalf("single AP should be unobservable, got %v", e)
	}
}

func TestExpectedErrorRangeAndEndfireFilters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRange = 5
	aps := square4() // all ≈7.07 m from center: everything filtered
	e, err := ExpectedError(geom.Point{X: 5, Y: 5}, aps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Fatalf("out-of-range APs should not contribute, got %v", e)
	}
	// Endfire: APs facing away from the point.
	cfg = DefaultConfig()
	cfg.EndfireLimitRad = geom.Rad(30)
	backwards := []AP{
		{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: math.Pi}, // faces −X, target at +X
		{Pos: geom.Point{X: 10, Y: 0}, NormalAngle: 0},      // faces +X, target behind
	}
	e, err = ExpectedError(geom.Point{X: 5, Y: 2}, backwards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e, 1) {
		t.Fatalf("endfire bearings should be dropped, got %v", e)
	}
}

func TestExpectedErrorMoreAPsBetter(t *testing.T) {
	p := geom.Point{X: 5, Y: 5}
	cfg := DefaultConfig()
	e4, _ := ExpectedError(p, square4(), cfg)
	aps6 := append(square4(),
		AP{Pos: geom.Point{X: 5, Y: 0}, NormalAngle: math.Pi / 2},
		AP{Pos: geom.Point{X: 5, Y: 10}, NormalAngle: -math.Pi / 2})
	e6, _ := ExpectedError(p, aps6, cfg)
	if e6 >= e4 {
		t.Fatalf("6 APs (%v) should beat 4 (%v)", e6, e4)
	}
}

func TestEvaluateCoverageMap(t *testing.T) {
	bounds := locate.Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	cm, err := Evaluate(bounds, 1, square4(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Xs) != 10 || len(cm.Ys) != 10 || len(cm.Err) != 10 {
		t.Fatalf("grid %dx%d", len(cm.Xs), len(cm.Ys))
	}
	frac, med := cm.Summary(1.0)
	if frac <= 0.5 {
		t.Fatalf("coverage fraction %v too low for a square deployment", frac)
	}
	if math.IsNaN(med) || med <= 0 {
		t.Fatalf("median expected error %v", med)
	}
	at, worst := cm.WorstCovered()
	if worst <= 0 || math.IsInf(worst, 1) {
		t.Fatalf("worst = %v", worst)
	}
	if !bounds.Contains(at) {
		t.Fatalf("worst point %v outside bounds", at)
	}
}

func TestEvaluateErrors(t *testing.T) {
	bounds := locate.Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, err := Evaluate(bounds, 0, square4(), DefaultConfig()); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Evaluate(locate.Bounds{}, 1, square4(), DefaultConfig()); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := Evaluate(bounds, 1, square4()[:1], DefaultConfig()); err == nil {
		t.Fatal("single AP accepted")
	}
	bad := DefaultConfig()
	bad.AoAStdRad = 0
	if _, err := Evaluate(bounds, 1, square4(), bad); err == nil {
		t.Fatal("zero sigma accepted")
	}
}
