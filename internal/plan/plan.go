// Package plan evaluates AP deployment geometry before installation: for
// every floor position it computes the expected lower bound on SpotFi's
// localization error from bearing geometry alone (a geometric dilution of
// precision for AoA triangulation), producing the coverage maps a
// deployment planner needs. Fig. 9(a) of the paper measures how density
// changes accuracy; this package predicts the spatial structure of that
// effect.
package plan

import (
	"fmt"
	"math"

	"spotfi/internal/geom"
	"spotfi/internal/locate"
)

// AP is a planned access point pose.
type AP struct {
	Pos         geom.Point
	NormalAngle float64
}

// Config controls the evaluation.
type Config struct {
	// AoAStdRad is the assumed per-AP bearing error (1σ). SpotFi's LoS
	// median of ~5° suggests 0.09 rad.
	AoAStdRad float64
	// MaxRange drops APs farther than this from the evaluated point
	// (0 = unlimited): distant APs rarely hear the target.
	MaxRange float64
	// EndfireLimitRad drops APs whose bearing to the point exceeds this
	// magnitude relative to their array normal: a ULA has no resolution
	// at endfire. Default π/2 (no limit within the front half-plane).
	EndfireLimitRad float64
}

// DefaultConfig assumes SpotFi-grade bearings.
func DefaultConfig() Config {
	return Config{AoAStdRad: 0.09, MaxRange: 25, EndfireLimitRad: geom.Rad(75)}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AoAStdRad <= 0 {
		return fmt.Errorf("plan: AoA std must be positive")
	}
	if c.MaxRange < 0 {
		return fmt.Errorf("plan: max range must be non-negative")
	}
	if c.EndfireLimitRad <= 0 || c.EndfireLimitRad > math.Pi/2+1e-9 {
		return fmt.Errorf("plan: endfire limit must be in (0, π/2]")
	}
	return nil
}

// ExpectedError returns the 1σ localization error bound (meters) for a
// target at p, from the Fisher information of the usable bearings: each AP
// measures the bearing angle with variance σ², contributing information
// (1/σ²d²) along the direction perpendicular to the line of sight. The
// bound is √trace(I⁻¹) — the position CRLB for AoA-only triangulation.
// It returns +Inf when fewer than two APs constrain the point (the
// information matrix is singular).
func ExpectedError(p geom.Point, aps []AP, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	var i11, i12, i22 float64
	usable := 0
	for _, ap := range aps {
		d := p.Dist(ap.Pos)
		if d < 1e-9 {
			continue // on top of the AP: bearing undefined
		}
		if cfg.MaxRange > 0 && d > cfg.MaxRange {
			continue
		}
		bearing := p.Sub(ap.Pos).Angle()
		if math.Abs(geom.NormalizeAngle(bearing-ap.NormalAngle)) > cfg.EndfireLimitRad {
			continue
		}
		// Unit vector perpendicular to the line of sight: the direction a
		// bearing error displaces the fix, with magnitude σ·d.
		ux := -math.Sin(bearing)
		uy := math.Cos(bearing)
		w := 1 / (cfg.AoAStdRad * cfg.AoAStdRad * d * d)
		i11 += w * ux * ux
		i12 += w * ux * uy
		i22 += w * uy * uy
		usable++
	}
	if usable < 2 {
		return math.Inf(1), nil
	}
	det := i11*i22 - i12*i12
	if det <= 1e-18 {
		return math.Inf(1), nil // collinear bearings: unobservable
	}
	// trace(I⁻¹) = (i11+i22)/det.
	return math.Sqrt((i11 + i22) / det), nil
}

// CoverageMap evaluates ExpectedError on a grid over bounds.
type CoverageMap struct {
	Bounds locate.Bounds
	StepM  float64
	// Xs, Ys are the grid coordinates; Err[i][j] the expected error at
	// (Xs[j], Ys[i]).
	Xs, Ys []float64
	Err    [][]float64
}

// Evaluate builds the coverage map.
func Evaluate(bounds locate.Bounds, stepM float64, aps []AP, cfg Config) (*CoverageMap, error) {
	if stepM <= 0 {
		return nil, fmt.Errorf("plan: step must be positive")
	}
	if bounds.MinX >= bounds.MaxX || bounds.MinY >= bounds.MaxY {
		return nil, fmt.Errorf("plan: empty bounds")
	}
	if len(aps) < 2 {
		return nil, fmt.Errorf("plan: need at least two APs")
	}
	cm := &CoverageMap{Bounds: bounds, StepM: stepM}
	for x := bounds.MinX + stepM/2; x < bounds.MaxX; x += stepM {
		cm.Xs = append(cm.Xs, x)
	}
	for y := bounds.MinY + stepM/2; y < bounds.MaxY; y += stepM {
		cm.Ys = append(cm.Ys, y)
	}
	for _, y := range cm.Ys {
		row := make([]float64, len(cm.Xs))
		for j, x := range cm.Xs {
			e, err := ExpectedError(geom.Point{X: x, Y: y}, aps, cfg)
			if err != nil {
				return nil, err
			}
			row[j] = e
		}
		cm.Err = append(cm.Err, row)
	}
	return cm, nil
}

// Summary reports coverage statistics: the fraction of grid points whose
// expected error is at most threshold, and the median finite expected
// error.
func (cm *CoverageMap) Summary(threshold float64) (coveredFrac, medianErr float64) {
	var finite []float64
	total, covered := 0, 0
	for _, row := range cm.Err {
		for _, e := range row {
			total++
			if math.IsInf(e, 1) {
				continue
			}
			finite = append(finite, e)
			if e <= threshold {
				covered++
			}
		}
	}
	if total == 0 {
		return 0, math.NaN()
	}
	coveredFrac = float64(covered) / float64(total)
	if len(finite) == 0 {
		return coveredFrac, math.NaN()
	}
	// Median via insertion sort (grids are small).
	for i := 1; i < len(finite); i++ {
		for j := i; j > 0 && finite[j] < finite[j-1]; j-- {
			finite[j], finite[j-1] = finite[j-1], finite[j]
		}
	}
	if n := len(finite); n%2 == 1 {
		medianErr = finite[n/2]
	} else {
		medianErr = (finite[n/2-1] + finite[n/2]) / 2
	}
	return coveredFrac, medianErr
}

// WorstCovered returns the position with the largest finite expected error
// — where to consider adding an AP.
func (cm *CoverageMap) WorstCovered() (geom.Point, float64) {
	worst := math.Inf(-1)
	var at geom.Point
	for i, row := range cm.Err {
		for j, e := range row {
			if !math.IsInf(e, 1) && e > worst {
				worst = e
				at = geom.Point{X: cm.Xs[j], Y: cm.Ys[i]}
			}
		}
	}
	return at, worst
}
