// Package csi models the Channel State Information a commodity WiFi NIC
// reports per received packet: a complex matrix of per-antenna,
// per-subcarrier channel measurements plus RSSI and metadata, with the
// Intel-5300-style 8-bit quantization, phase utilities, and trace
// serialization SpotFi's pipeline consumes.
package csi

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNonFinite marks validation failures caused by NaN or Inf values —
// what a buggy NIC driver (or injected chaos) produces. Callers match it
// with errors.Is to count and drop such packets at the door instead of
// letting them propagate into MUSIC's eigendecomposition, and to
// distinguish bad values (drop the packet) from structural corruption
// (distrust the stream).
var ErrNonFinite = errors.New("non-finite value")

// Matrix holds CSI for one packet: Values[m][n] is the complex channel of
// antenna m at reported subcarrier n (the paper's csi_{m,n}, Eq. 5).
type Matrix struct {
	Values [][]complex128
}

// NewMatrix returns a zeroed antennas×subcarriers CSI matrix.
func NewMatrix(antennas, subcarriers int) *Matrix {
	if antennas <= 0 || subcarriers <= 0 {
		panic(fmt.Sprintf("csi: invalid CSI dimensions %dx%d", antennas, subcarriers))
	}
	v := make([][]complex128, antennas)
	backing := make([]complex128, antennas*subcarriers)
	for m := range v {
		v[m], backing = backing[:subcarriers:subcarriers], backing[subcarriers:]
	}
	return &Matrix{Values: v}
}

// Antennas returns the number of antenna rows.
//
//spotfi:noalloc
func (c *Matrix) Antennas() int { return len(c.Values) }

// Subcarriers returns the number of subcarrier columns.
//
//spotfi:noalloc
func (c *Matrix) Subcarriers() int {
	if len(c.Values) == 0 {
		return 0
	}
	return len(c.Values[0])
}

// Clone returns a deep copy.
func (c *Matrix) Clone() *Matrix {
	out := NewMatrix(c.Antennas(), c.Subcarriers())
	for m := range c.Values {
		copy(out.Values[m], c.Values[m])
	}
	return out
}

// Validate checks the matrix is rectangular, non-empty, and free of
// NaN/Inf entries.
func (c *Matrix) Validate() error {
	if len(c.Values) == 0 || len(c.Values[0]) == 0 {
		return fmt.Errorf("csi: empty matrix")
	}
	n := len(c.Values[0])
	for m, row := range c.Values {
		if len(row) != n {
			return fmt.Errorf("csi: ragged matrix: row %d has %d entries, want %d", m, len(row), n)
		}
		for k, v := range row {
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
				return fmt.Errorf("csi: entry at antenna %d subcarrier %d: %w", m, k, ErrNonFinite)
			}
		}
	}
	return nil
}

// Flatten stacks the matrix into the single 90×1-style column the paper's
// extended sensor array uses (Fig. 4 left): antenna-major, i.e.
// [csi_{1,1} … csi_{1,N} csi_{2,1} … csi_{M,N}].
func (c *Matrix) Flatten() []complex128 {
	m, n := c.Antennas(), c.Subcarriers()
	out := make([]complex128, 0, m*n)
	for a := 0; a < m; a++ {
		out = append(out, c.Values[a]...)
	}
	return out
}

// Power returns the total received power across all antennas and
// subcarriers (linear units).
func (c *Matrix) Power() float64 {
	var sum float64
	for _, row := range c.Values {
		for _, v := range row {
			sum += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return sum
}

// Phase returns the wrapped phase matrix, in radians.
func (c *Matrix) Phase() [][]float64 {
	out := make([][]float64, c.Antennas())
	for m, row := range c.Values {
		out[m] = make([]float64, len(row))
		for n, v := range row {
			out[m][n] = cmplx.Phase(v)
		}
	}
	return out
}

// UnwrappedPhase returns the per-antenna phase response unwrapped along the
// subcarrier axis (the ψᵢ(m,n) of Algorithm 1): consecutive subcarrier
// phase differences are brought into (−π, π].
func (c *Matrix) UnwrappedPhase() [][]float64 {
	out := c.Phase()
	for _, row := range out {
		UnwrapInPlace(row)
	}
	return out
}

// UnwrapInPlace unwraps a phase sequence along its length.
func UnwrapInPlace(phase []float64) {
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		for d > math.Pi {
			phase[i] -= 2 * math.Pi
			d = phase[i] - phase[i-1]
		}
		for d < -math.Pi {
			phase[i] += 2 * math.Pi
			d = phase[i] - phase[i-1]
		}
	}
}

// Quantize applies Intel-5300-style quantization in place: each I/Q
// component is scaled by the largest magnitude across the matrix to fit the
// signed 8-bit range and rounded. The common scale factor is returned so
// relative values — all SpotFi cares about — survive. A zero matrix is
// returned unchanged with scale 0.
func (c *Matrix) Quantize() float64 {
	var maxAbs float64
	for _, row := range c.Values {
		for _, v := range row {
			maxAbs = math.Max(maxAbs, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
		}
	}
	if maxAbs == 0 {
		return 0
	}
	scale := 127 / maxAbs
	for _, row := range c.Values {
		for n, v := range row {
			row[n] = complex(math.Round(real(v)*scale), math.Round(imag(v)*scale))
		}
	}
	return scale
}

// Packet is one CSI report: the measurement a (simulated) AP ships to the
// central server for one received frame.
type Packet struct {
	// APID identifies the reporting access point.
	APID int
	// TargetMAC identifies the transmitter.
	TargetMAC string
	// Seq is the packet sequence number at the AP.
	Seq uint64
	// TimestampNs is the AP-local receive timestamp.
	TimestampNs int64
	// RSSIdBm is the received signal strength for the frame.
	RSSIdBm float64
	// CSI is the per-antenna per-subcarrier channel matrix.
	CSI *Matrix
}

// Validate checks packet fields needed by the pipeline.
func (p *Packet) Validate() error {
	if p.CSI == nil {
		return fmt.Errorf("csi: packet without CSI matrix")
	}
	if err := p.CSI.Validate(); err != nil {
		return err
	}
	if p.TargetMAC == "" {
		return fmt.Errorf("csi: packet without target MAC")
	}
	if math.IsNaN(p.RSSIdBm) || math.IsInf(p.RSSIdBm, 0) {
		return fmt.Errorf("csi: RSSI: %w", ErrNonFinite)
	}
	return nil
}
