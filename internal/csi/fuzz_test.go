package csi

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// FuzzTraceReader feeds arbitrary bytes to the trace reader: it must never
// panic, loop forever, or return invalid packets.
func FuzzTraceReader(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for i := 0; i < 3; i++ {
		m := NewMatrix(3, 30)
		for a := range m.Values {
			for n := range m.Values[a] {
				m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		w.WritePacket(&Packet{APID: i, TargetMAC: "02:01", Seq: uint64(i), RSSIdBm: -50, CSI: m})
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x54, 0x46, 0x53}) // trace magic, nothing else
	f.Add(bytes.Repeat([]byte{0x00}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewTraceReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			p, err := r.ReadPacket()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if verr := p.Validate(); verr != nil {
				t.Fatalf("reader returned invalid packet: %v", verr)
			}
		}
	})
}
