package csi

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestMatrixJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	m := NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Antennas() != 3 || back.Subcarriers() != 30 {
		t.Fatalf("shape %dx%d", back.Antennas(), back.Subcarriers())
	}
	for a := range m.Values {
		for n := range m.Values[a] {
			if back.Values[a][n] != m.Values[a][n] {
				t.Fatalf("value mismatch at (%d,%d)", a, n)
			}
		}
	}
}

func TestPacketJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	p := randomPacket(rng, 3, 17)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Packet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.APID != p.APID || back.Seq != p.Seq || back.TargetMAC != p.TargetMAC ||
		back.RSSIdBm != p.RSSIdBm || back.TimestampNs != p.TimestampNs {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	if back.CSI.Values[2][29] != p.CSI.Values[2][29] {
		t.Fatal("CSI mismatch")
	}
}

func TestMatrixJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"antennas":0,"subcarriers":30,"values":[]}`,
		`{"antennas":2,"subcarriers":2,"values":[[1,2]]}`, // wrong count
		`{"antennas":1,"subcarriers":1,"values":[["a","b"]]}`,
	}
	for i, c := range cases {
		var m Matrix
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestPacketJSONRejectsInvalid(t *testing.T) {
	// Valid JSON but an invalid packet (no MAC).
	blob := `{"ap_id":1,"target_mac":"","seq":0,"timestamp_ns":0,"rssi_dbm":-40,
	  "csi":{"antennas":1,"subcarriers":1,"values":[[1,0]]}}`
	var p Packet
	if err := json.Unmarshal([]byte(blob), &p); err == nil {
		t.Fatal("MAC-less packet accepted")
	}
	// Marshal side validates too.
	bad := &Packet{TargetMAC: "x", RSSIdBm: -10}
	if _, err := json.Marshal(bad); err == nil {
		t.Fatal("nil-CSI packet marshaled")
	}
}
