package csi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Trace serialization: a compact binary stream of CSI packets, used by the
// spotfi-trace tool and by the AP→server wire protocol. The format is
// little-endian and versioned:
//
//	magic   uint32  'SFT1'
//	then per packet:
//	  apID        int32
//	  seq         uint64
//	  timestampNs int64
//	  rssi        float64
//	  macLen      uint16, mac bytes
//	  antennas    uint16
//	  subcarriers uint16
//	  values      antennas*subcarriers × (float64 re, float64 im)

const traceMagic uint32 = 0x53465431 // "SFT1"

// ErrBadTrace is returned when a trace stream is malformed.
var ErrBadTrace = errors.New("csi: malformed trace")

// maxTraceDim bounds per-packet dimensions so a corrupt stream cannot make
// the reader allocate unbounded memory.
const maxTraceDim = 1 << 12

// TraceWriter streams packets to w in trace format.
type TraceWriter struct {
	w     *bufio.Writer
	began bool
}

// NewTraceWriter returns a TraceWriter on w. The magic header is written
// lazily on first WritePacket.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// WritePacket appends one packet to the trace.
func (t *TraceWriter) WritePacket(p *Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !t.began {
		if err := binary.Write(t.w, binary.LittleEndian, traceMagic); err != nil {
			return err
		}
		t.began = true
	}
	if len(p.TargetMAC) > math.MaxUint16 {
		return fmt.Errorf("csi: MAC string too long (%d bytes)", len(p.TargetMAC))
	}
	hdr := struct {
		APID        int32
		Seq         uint64
		TimestampNs int64
		RSSI        float64
		MACLen      uint16
	}{int32(p.APID), p.Seq, p.TimestampNs, p.RSSIdBm, uint16(len(p.TargetMAC))}
	if err := binary.Write(t.w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if _, err := t.w.WriteString(p.TargetMAC); err != nil {
		return err
	}
	dims := struct{ Antennas, Subcarriers uint16 }{uint16(p.CSI.Antennas()), uint16(p.CSI.Subcarriers())}
	if err := binary.Write(t.w, binary.LittleEndian, dims); err != nil {
		return err
	}
	for _, row := range p.CSI.Values {
		for _, v := range row {
			if err := binary.Write(t.w, binary.LittleEndian, [2]float64{real(v), imag(v)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes buffered trace data to the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader reads packets from a trace stream.
type TraceReader struct {
	r     *bufio.Reader
	began bool
}

// NewTraceReader returns a TraceReader on r.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{r: bufio.NewReader(r)}
}

// ReadPacket reads the next packet. It returns io.EOF at a clean end of
// stream and ErrBadTrace (wrapped) on corruption.
func (t *TraceReader) ReadPacket() (*Packet, error) {
	if !t.began {
		var magic uint32
		if err := binary.Read(t.r, binary.LittleEndian, &magic); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: reading magic: %v", ErrBadTrace, err)
		}
		if magic != traceMagic {
			return nil, fmt.Errorf("%w: bad magic %#x", ErrBadTrace, magic)
		}
		t.began = true
	}
	var hdr struct {
		APID        int32
		Seq         uint64
		TimestampNs int64
		RSSI        float64
		MACLen      uint16
	}
	if err := binary.Read(t.r, binary.LittleEndian, &hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadTrace, err)
	}
	mac := make([]byte, hdr.MACLen)
	if _, err := io.ReadFull(t.r, mac); err != nil {
		return nil, fmt.Errorf("%w: reading MAC: %v", ErrBadTrace, err)
	}
	var dims struct{ Antennas, Subcarriers uint16 }
	if err := binary.Read(t.r, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("%w: reading dims: %v", ErrBadTrace, err)
	}
	if dims.Antennas == 0 || dims.Subcarriers == 0 || int(dims.Antennas) > maxTraceDim || int(dims.Subcarriers) > maxTraceDim {
		return nil, fmt.Errorf("%w: implausible dims %dx%d", ErrBadTrace, dims.Antennas, dims.Subcarriers)
	}
	m := NewMatrix(int(dims.Antennas), int(dims.Subcarriers))
	var pair [2]float64
	for a := 0; a < int(dims.Antennas); a++ {
		for n := 0; n < int(dims.Subcarriers); n++ {
			if err := binary.Read(t.r, binary.LittleEndian, &pair); err != nil {
				return nil, fmt.Errorf("%w: reading values: %v", ErrBadTrace, err)
			}
			m.Values[a][n] = complex(pair[0], pair[1])
		}
	}
	p := &Packet{
		APID:        int(hdr.APID),
		Seq:         hdr.Seq,
		TimestampNs: hdr.TimestampNs,
		RSSIdBm:     hdr.RSSI,
		TargetMAC:   string(mac),
		CSI:         m,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return p, nil
}
