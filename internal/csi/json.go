package csi

import (
	"encoding/json"
	"fmt"
)

// JSON interop: encoding/json cannot marshal complex128, so the Matrix
// encodes each CSI value as a [re, im] pair. The packet wrapper gives
// external tooling (plotting, analysis notebooks) a self-describing
// format; the binary SFT1 trace remains the efficient on-disk form.

// matrixJSON is the wire shape of a Matrix.
type matrixJSON struct {
	Antennas    int          `json:"antennas"`
	Subcarriers int          `json:"subcarriers"`
	Values      [][2]float64 `json:"values"` // antenna-major [re, im]
}

// MarshalJSON implements json.Marshaler.
func (c *Matrix) MarshalJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	m := matrixJSON{Antennas: c.Antennas(), Subcarriers: c.Subcarriers()}
	m.Values = make([][2]float64, 0, m.Antennas*m.Subcarriers)
	for _, row := range c.Values {
		for _, v := range row {
			m.Values = append(m.Values, [2]float64{real(v), imag(v)})
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Matrix) UnmarshalJSON(data []byte) error {
	var m matrixJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if m.Antennas <= 0 || m.Subcarriers <= 0 {
		return fmt.Errorf("csi: invalid JSON dimensions %dx%d", m.Antennas, m.Subcarriers)
	}
	if len(m.Values) != m.Antennas*m.Subcarriers {
		return fmt.Errorf("csi: JSON has %d values for %dx%d", len(m.Values), m.Antennas, m.Subcarriers)
	}
	fresh := NewMatrix(m.Antennas, m.Subcarriers)
	k := 0
	for a := 0; a < m.Antennas; a++ {
		for n := 0; n < m.Subcarriers; n++ {
			fresh.Values[a][n] = complex(m.Values[k][0], m.Values[k][1])
			k++
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*c = *fresh
	return nil
}

// packetJSON is the wire shape of a Packet.
type packetJSON struct {
	APID        int     `json:"ap_id"`
	TargetMAC   string  `json:"target_mac"`
	Seq         uint64  `json:"seq"`
	TimestampNs int64   `json:"timestamp_ns"`
	RSSIdBm     float64 `json:"rssi_dbm"`
	CSI         *Matrix `json:"csi"`
}

// MarshalJSON implements json.Marshaler.
func (p *Packet) MarshalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(packetJSON{
		APID: p.APID, TargetMAC: p.TargetMAC, Seq: p.Seq,
		TimestampNs: p.TimestampNs, RSSIdBm: p.RSSIdBm, CSI: p.CSI,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Packet) UnmarshalJSON(data []byte) error {
	var w packetJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Packet{
		APID: w.APID, TargetMAC: w.TargetMAC, Seq: w.Seq,
		TimestampNs: w.TimestampNs, RSSIdBm: w.RSSIdBm, CSI: w.CSI,
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*p = out
	return nil
}
