package csi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 30)
	if m.Antennas() != 3 || m.Subcarriers() != 30 {
		t.Fatalf("got %dx%d", m.Antennas(), m.Subcarriers())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 30)
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Values[1][2] = 5
	c := m.Clone()
	c.Values[1][2] = 7
	if m.Values[1][2] != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateCatchesNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Values[0][1] = complex(math.NaN(), 0)
	if err := m.Validate(); err == nil {
		t.Fatal("NaN entry not caught")
	}
	m2 := NewMatrix(2, 2)
	m2.Values[1][0] = complex(0, math.Inf(1))
	if err := m2.Validate(); err == nil {
		t.Fatal("Inf entry not caught")
	}
}

func TestValidateCatchesRagged(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Values[1] = m.Values[1][:2]
	if err := m.Validate(); err == nil {
		t.Fatal("ragged matrix not caught")
	}
}

func TestFlattenOrder(t *testing.T) {
	m := NewMatrix(2, 3)
	k := complex128(0)
	for a := 0; a < 2; a++ {
		for n := 0; n < 3; n++ {
			m.Values[a][n] = k
			k++
		}
	}
	f := m.Flatten()
	for i, v := range f {
		if v != complex(float64(i), 0) {
			t.Fatalf("Flatten order wrong at %d: %v", i, v)
		}
	}
}

func TestPower(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Values[0][0] = 3
	m.Values[0][1] = 4i
	if p := m.Power(); math.Abs(p-25) > 1e-12 {
		t.Fatalf("Power = %v, want 25", p)
	}
}

func TestPhaseAndUnwrap(t *testing.T) {
	// Build CSI with a steep linear phase ramp that wraps several times.
	m := NewMatrix(1, 30)
	slope := 1.9 // rad per subcarrier, wraps within 4 steps
	for n := 0; n < 30; n++ {
		m.Values[0][n] = cmplx.Exp(complex(0, slope*float64(n)))
	}
	un := m.UnwrappedPhase()[0]
	for n := 1; n < 30; n++ {
		d := un[n] - un[n-1]
		if math.Abs(d-slope) > 1e-9 {
			t.Fatalf("unwrapped increment %v at %d, want %v", d, n, slope)
		}
	}
}

func TestUnwrapNegativeSlope(t *testing.T) {
	phase := make([]float64, 20)
	slope := -2.5
	for n := range phase {
		phase[n] = math.Mod(slope*float64(n), 2*math.Pi)
		if phase[n] > math.Pi {
			phase[n] -= 2 * math.Pi
		} else if phase[n] <= -math.Pi {
			phase[n] += 2 * math.Pi
		}
	}
	UnwrapInPlace(phase)
	for n := 1; n < 20; n++ {
		if d := phase[n] - phase[n-1]; math.Abs(d-slope) > 1e-9 {
			t.Fatalf("negative-slope unwrap increment %v, want %v", d, slope)
		}
	}
}

func TestQuantizePreservesRelativeValues(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Values[0][0] = complex(1, -0.5)
	m.Values[0][1] = complex(0.25, 0.75)
	scale := m.Quantize()
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	// Max component must hit full range.
	if real(m.Values[0][0]) != 127 {
		t.Fatalf("largest component quantized to %v, want 127", real(m.Values[0][0]))
	}
	// Relative error after rescaling should be < 1 LSB.
	back := real(m.Values[0][1]) / scale
	if math.Abs(back-0.25) > 1/scale {
		t.Fatalf("dequantized 0.25 → %v", back)
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	m := NewMatrix(2, 2)
	if s := m.Quantize(); s != 0 {
		t.Fatalf("zero matrix scale %v, want 0", s)
	}
}

func TestQuantizeIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	m.Quantize()
	for _, row := range m.Values {
		for _, v := range row {
			if real(v) != math.Trunc(real(v)) || imag(v) != math.Trunc(imag(v)) {
				t.Fatalf("non-integral quantized value %v", v)
			}
			if math.Abs(real(v)) > 127 || math.Abs(imag(v)) > 127 {
				t.Fatalf("quantized value %v out of int8 range", v)
			}
		}
	}
}

func TestQuickQuantizeBounded(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(22))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(1+rng.Intn(3), 1+rng.Intn(30))
		for a := range m.Values {
			for n := range m.Values[a] {
				m.Values[a][n] = complex(rng.NormFloat64()*100, rng.NormFloat64()*100)
			}
		}
		m.Quantize()
		for _, row := range m.Values {
			for _, v := range row {
				if math.Abs(real(v)) > 127.000001 || math.Abs(imag(v)) > 127.000001 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPacketValidate(t *testing.T) {
	good := &Packet{APID: 1, TargetMAC: "aa:bb", RSSIdBm: -40, CSI: NewMatrix(3, 30)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Packet{
		{TargetMAC: "aa", RSSIdBm: -40},                                 // nil CSI
		{TargetMAC: "", RSSIdBm: -40, CSI: NewMatrix(3, 30)},            // no MAC
		{TargetMAC: "aa", RSSIdBm: math.Inf(-1), CSI: NewMatrix(3, 30)}, // inf RSSI
		{TargetMAC: "aa", RSSIdBm: math.NaN(), CSI: NewMatrix(3, 30)},   // nan RSSI
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad packet %d validated", i)
		}
	}
}
