package csi

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func randomPacket(rng *rand.Rand, ap int, seq uint64) *Packet {
	m := NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return &Packet{
		APID:        ap,
		TargetMAC:   "02:00:00:00:00:01",
		Seq:         seq,
		TimestampNs: int64(seq) * 100_000_000,
		RSSIdBm:     -40 - rng.Float64()*30,
		CSI:         m,
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	var sent []*Packet
	for i := 0; i < 25; i++ {
		p := randomPacket(rng, i%6, uint64(i))
		sent = append(sent, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewTraceReader(&buf)
	for i := 0; ; i++ {
		p, err := r.ReadPacket()
		if err == io.EOF {
			if i != len(sent) {
				t.Fatalf("EOF after %d packets, want %d", i, len(sent))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := sent[i]
		if p.APID != want.APID || p.Seq != want.Seq || p.TimestampNs != want.TimestampNs ||
			p.RSSIdBm != want.RSSIdBm || p.TargetMAC != want.TargetMAC {
			t.Fatalf("packet %d metadata mismatch: %+v vs %+v", i, p, want)
		}
		for a := range want.CSI.Values {
			for n := range want.CSI.Values[a] {
				if p.CSI.Values[a][n] != want.CSI.Values[a][n] {
					t.Fatalf("packet %d CSI mismatch at (%d,%d)", i, a, n)
				}
			}
		}
	}
}

func TestTraceEmptyStream(t *testing.T) {
	r := NewTraceReader(bytes.NewReader(nil))
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestTraceBadMagic(t *testing.T) {
	r := NewTraceReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	_, err := r.ReadPacket()
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestTraceTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.WritePacket(randomPacket(rng, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut the stream mid-packet.
	r := NewTraceReader(bytes.NewReader(data[:len(data)-17]))
	_, err := r.ReadPacket()
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated read err = %v, want ErrBadTrace", err)
	}
}

func TestTraceImplausibleDims(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.WritePacket(randomPacket(rng, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The dims live right after magic(4)+hdr(4+8+8+8+2)+mac(17).
	dimOff := 4 + 30 + 17
	data[dimOff] = 0xff
	data[dimOff+1] = 0xff // antennas = 65535
	r := NewTraceReader(bytes.NewReader(data))
	_, err := r.ReadPacket()
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("implausible dims err = %v, want ErrBadTrace", err)
	}
}

func TestTraceWriterRejectsInvalidPacket(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.WritePacket(&Packet{TargetMAC: "x", RSSIdBm: -10}); err == nil {
		t.Fatal("nil-CSI packet accepted")
	}
	if buf.Len() != 0 {
		t.Fatal("rejected packet still wrote bytes")
	}
}
