package spotfi

import (
	"bytes"
	"log/slog"
	"testing"
)

// testLogger routes structured server logs through t.Logf so they
// interleave with test output and vanish on success.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}
