package spotfi

import (
	"reflect"
	"strings"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/testbed"
)

// scrapeRegistry renders r in Prometheus text format and parses it back.
func scrapeRegistry(t *testing.T, r *obs.Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, b.String())
}

// officeBursts collects one burst per AP from an Office deployment.
func officeBursts(t *testing.T, d *testbed.Deployment, target, packets int) map[int][]*csi.Packet {
	t.Helper()
	bursts := make(map[int][]*csi.Packet)
	for a := range d.APs {
		b, err := d.Burst(a, target, packets)
		if err != nil {
			t.Fatal(err)
		}
		bursts[a] = b
	}
	return bursts
}

// TestFastPathCountersPartition checks that with the ESPRIT fast path
// enabled, every burst either lands in the accepted counter or the
// fallback counter — never both, never neither — and that the pipeline
// still produces a usable location.
func TestFastPathCountersPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d := testbed.Office(11)
	reg := obs.NewRegistry()
	cfg := DefaultConfig(d.Bounds)
	cfg.Workers = 2
	cfg.FastPath = FastPathConfig{Enabled: true}
	cfg.Metrics = NewPipelineMetrics(reg)
	loc, err := New(cfg, deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}
	bursts := officeBursts(t, d, 0, 6)
	p, reports, skipped, err := loc.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped APs with fast path on: %v", skipped)
	}
	if len(reports) != len(bursts) {
		t.Fatalf("got %d reports for %d bursts", len(reports), len(bursts))
	}
	if !d.Bounds.Contains(p.Point) {
		t.Fatalf("estimate %v outside bounds", p.Point)
	}
	acc := cfg.Metrics.FastPathAccepted.Value()
	fb := cfg.Metrics.FastPathFallbacks.Value()
	if acc+fb != uint64(len(bursts)) {
		t.Fatalf("accepted(%d)+fallback(%d) != bursts(%d)", acc, fb, len(bursts))
	}
	if got := cfg.Metrics.BurstsProcessed.Value(); got != uint64(len(bursts)) {
		t.Fatalf("BurstsProcessed = %d, want %d", got, len(bursts))
	}
}

// TestFastPathImpossibleGatesMatchesDisabled forces every burst through
// the fallback (gates no real burst can clear) and checks the reports are
// bitwise identical to a fast-path-disabled run: the fallback re-estimates
// from the same prepped CSI, so trying ESPRIT first must not perturb the
// MUSIC result.
func TestFastPathImpossibleGatesMatchesDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d := testbed.Office(11)
	bursts := officeBursts(t, d, 2, 6)

	mkLoc := func(fp FastPathConfig, reg *obs.Registry) (*Localizer, *PipelineMetrics) {
		cfg := DefaultConfig(d.Bounds)
		cfg.Workers = 2
		cfg.FastPath = fp
		var m *PipelineMetrics
		if reg != nil {
			m = NewPipelineMetrics(reg)
			cfg.Metrics = m
		}
		loc, err := New(cfg, deploymentAPs(d))
		if err != nil {
			t.Fatal(err)
		}
		return loc, m
	}

	reg := obs.NewRegistry()
	forced, m := mkLoc(FastPathConfig{Enabled: true, MinEigenGapDB: 1e9, MinMargin: 1e9}, reg)
	plain, _ := mkLoc(FastPathConfig{}, nil)

	pForced, rForced, _, err := forced.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	pPlain, rPlain, _, err := plain.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	if m.FastPathAccepted.Value() != 0 {
		t.Fatalf("impossible gates accepted %d bursts", m.FastPathAccepted.Value())
	}
	if got := m.FastPathFallbacks.Value(); got != uint64(len(bursts)) {
		t.Fatalf("fallbacks = %d, want %d", got, len(bursts))
	}
	if pForced != pPlain {
		t.Fatalf("forced-fallback location %v differs from disabled %v", pForced, pPlain)
	}
	if !reflect.DeepEqual(rForced, rPlain) {
		t.Fatal("forced-fallback reports differ from fast-path-disabled reports")
	}
}

// TestFastPathDeterministic runs the fast-path pipeline twice over the
// same bursts; the gate decisions and results must be bitwise stable.
func TestFastPathDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d := testbed.Office(11)
	bursts := officeBursts(t, d, 1, 6)
	run := func() (Location, []*APReport) {
		cfg := DefaultConfig(d.Bounds)
		cfg.Workers = 2
		cfg.FastPath = FastPathConfig{Enabled: true}
		loc, err := New(cfg, deploymentAPs(d))
		if err != nil {
			t.Fatal(err)
		}
		p, reports, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			t.Fatal(err)
		}
		return p, reports
	}
	p1, r1 := run()
	p2, r2 := run()
	if p1 != p2 {
		t.Fatalf("same input, different estimates: %v vs %v", p1, p2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("fast-path reports not deterministic")
	}
}

// TestSteeringCacheMetricsRegister exercises RegisterSteeringCacheMetrics:
// the three gauges must appear in a scrape and reflect a cache that has at
// least served this process's estimators.
func TestSteeringCacheMetricsRegister(t *testing.T) {
	d := testbed.Office(11)
	cfg := DefaultConfig(d.Bounds)
	if _, err := New(cfg, deploymentAPs(d)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RegisterSteeringCacheMetrics(reg)
	got := scrapeRegistry(t, reg)
	entries, ok := got["spotfi_steering_cache_entries"]
	if !ok {
		t.Fatal("spotfi_steering_cache_entries not exported")
	}
	if entries < 1 {
		t.Fatalf("cache entries = %v, want >= 1 after building a localizer", entries)
	}
	if _, ok := got["spotfi_steering_cache_hits"]; !ok {
		t.Fatal("spotfi_steering_cache_hits not exported")
	}
	if _, ok := got["spotfi_steering_cache_misses"]; !ok {
		t.Fatal("spotfi_steering_cache_misses not exported")
	}
}
