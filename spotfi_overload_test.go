package spotfi

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spotfi/internal/admit"
	"spotfi/internal/apnode"
	"spotfi/internal/chaos"
	"spotfi/internal/csi"
	"spotfi/internal/flight"
	"spotfi/internal/obs"
	"spotfi/internal/obs/quality"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// cycleSource synthesizes an unbounded packet stream round-robining over
// several targets — one AP's view of a crowded floor, used to flood the
// server far past its localization capacity.
type cycleSource struct {
	syns []*sim.Synthesizer
	macs []string
	i    int
}

func (s *cycleSource) Next() (*csi.Packet, error) {
	k := s.i % len(s.syns)
	s.i++
	return s.syns[k].NextPacket(s.macs[k]), nil
}

// phasedSource switches one long-lived AP stream between two regimes
// without reconnecting (a reconnect would — correctly — count as breaker
// churn): an unthrottled multi-target flood while *flood* is set, then a
// throttled single-target trickle the server can comfortably keep up with.
type phasedSource struct {
	flood    *atomic.Bool
	floodSrc apnode.PacketSource
	calmSrc  apnode.PacketSource
	throttle time.Duration
}

func (s *phasedSource) Next() (*csi.Packet, error) {
	if s.flood.Load() {
		return s.floodSrc.Next()
	}
	time.Sleep(s.throttle)
	return s.calmSrc.Next()
}

// TestOverloadSoak floods the full deployed path — AP agents → wire →
// server → collector → admission queue → degraded-mode localization — at
// far above worker capacity, with one AP phase-skewed the whole flood.
// The overload-resilience layer must hold the line on every axis at once:
//
//   - admission control sheds (capacity eviction, hard deadline, CoDel)
//     instead of queue sojourn growing without bound — every burst that
//     does reach a worker waited less than the freshness deadline;
//   - the mode ladder steps the pipeline down under pressure and fixes
//     keep flowing, stamped with the degraded mode;
//   - the skewed AP's circuit breaker trips open on its collapsed burst
//     scores, quarantining it out of localization;
//   - once the flood stops, the breaker half-opens, probes the now-healthy
//     AP back in, and the ladder climbs back to full fidelity;
//   - drain tears everything down without leaking goroutines.
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak run")
	}
	d := testbed.Office(42)
	const (
		batch       = 6
		skewedAP    = 0
		floodTgts   = 6 // concurrent targets during the flood
		calmTgt     = 4 // the one target of the recovery phase
		workers     = 2
		queueCap    = 32
		admitTarget = 60 * time.Millisecond
		deadline    = 600 * time.Millisecond
	)

	reg := obs.NewRegistry()
	base := DefaultConfig(d.Bounds)

	// Flight recorder armed for the whole soak: the skewed AP's breaker
	// opening must freeze a bundle mid-flood, and the drain dump at the
	// end feeds the replay gate. SPOTFI_FLIGHT_BUNDLE_DIR (set by CI)
	// keeps the bundles around as an artifact; locally they land in a
	// temp dir.
	bundleDir := os.Getenv("SPOTFI_FLIGHT_BUNDLE_DIR")
	if bundleDir == "" {
		bundleDir = t.TempDir()
	}
	specs := make([]flight.APSpec, len(d.APs))
	for i, ap := range d.APs {
		specs[i] = flight.APSpec{ID: ap.ID, X: ap.Pos.X, Y: ap.Pos.Y, NormalRad: ap.NormalAngle}
	}
	// Small rings and a long cooldown: a dump serializes every ring, and
	// on a starved CI core repeated mid-flood dumps would steal the CPU
	// the breaker's probation needs. One breaker-open bundle is the
	// assertion; the drain bundle carries the replayable end state.
	rec, err := flight.New(flight.Config{
		Dir:         bundleDir,
		FramesPerAP: 128,
		Cooldown:    30 * time.Second,
		MaxBundles:  4,
		Registry:    reg,
		Server: flight.ServerConfig{
			Bounds: [4]float64{d.Bounds.MinX, d.Bounds.MinY, d.Bounds.MaxX, d.Bounds.MaxY},
			APs:    specs,
			Batch:  batch,
			MinAPs: 3,
			Modes:  3,
			Seed:   base.Seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// UnhealthyBelow sits far under the healthy fleet's occasional
	// single-burst dips (~0.15 of bursts score 0.1–0.3 even on clean APs):
	// the sick AP's trip signal in this soak is its non-finite CSI, which
	// fires deterministically on the ingest path.
	breakers := admit.NewBreakerSet(reg, admit.BreakerConfig{
		Window:         10 * time.Second,
		Failures:       6,
		Cooldown:       1500 * time.Millisecond,
		Probes:         2,
		UnhealthyBelow: 0.05,
		OnTransition: func(ap int, from, to admit.State, kind admit.FailureKind) {
			rec.Note(flight.EventBreaker, ap, "", from.String()+"→"+to.String()+" ("+string(kind)+")", 0)
			if to == admit.StateOpen {
				rec.Trigger(flight.TriggerBreakerOpen, fmt.Sprintf("AP %d breaker opened (%s)", ap, string(kind)))
			}
		},
	})
	monitor := quality.NewMonitor(reg, quality.Config{
		OnBurst: func(sc quality.Score) {
			for _, ap := range sc.PerAP {
				breakers.ObserveScore(ap.APID, ap.Score)
			}
		},
		OnDriftBreach: func(apID, breached int) {
			if breached >= 2 {
				breakers.Failure(apID, admit.FailDrift)
			}
		},
	})
	base.Metrics = NewPipelineMetrics(reg)
	base.QualityMonitor = monitor
	// The same three-rung ladder spotfi-server builds — and the one replay
	// reconstructs from the bundle manifest.
	locs, err := BuildLadder(base, deploymentAPs(d), 3)
	if err != nil {
		t.Fatal(err)
	}

	var shedByReason [4]atomic.Uint64
	reasonIdx := map[admit.ShedReason]int{
		admit.ShedFull: 0, admit.ShedStale: 1, admit.ShedCoDel: 2, admit.ShedDrain: 3,
	}
	adq := admit.NewQueue(admit.QueueConfig{
		Capacity: queueCap,
		Target:   admitTarget,
		Deadline: deadline,
		Interval: 250 * time.Millisecond,
		Metrics:  admit.NewQueueMetrics(reg),
		OnShed: func(_ admit.Item, r admit.ShedReason) {
			shedByReason[reasonIdx[r]].Add(1)
		},
	})
	ladder := admit.NewLadder(reg, admit.LadderConfig{
		MaxMode:     admit.ModeCoarse,
		StepDownAt:  []time.Duration{2 * admitTarget, 6 * admitTarget},
		StepUpBelow: admitTarget / 2,
		HoldGood:    4,
	})

	type job struct {
		mac    string
		bursts map[int][]*csi.Packet
	}

	// The worker loop mirrors spotfi-server's: pop through the admission
	// policy, step the ladder on the observed sojourn, re-filter APs whose
	// breaker opened while the burst sat queued, localize on the rung's
	// localizer.
	type fix struct {
		mac string
		loc Location
	}
	var (
		fixMu       sync.Mutex
		fixes       []fix
		sojourns    []time.Duration
		maxModeSeen atomic.Int64
	)
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for {
				it, sojourn, ok := adq.Pop()
				if !ok {
					return
				}
				mode := ladder.Observe(sojourn)
				if int64(mode) > maxModeSeen.Load() {
					maxModeSeen.Store(int64(mode))
				}
				j := it.Payload.(job)
				for ap := range j.bursts {
					if !breakers.Allow(ap) {
						delete(j.bursts, ap)
					}
				}
				if len(j.bursts) < 2 {
					continue
				}
				p, _, _, err := locs[mode].LocalizeBursts(j.bursts)
				fixMu.Lock()
				sojourns = append(sojourns, sojourn)
				if err == nil {
					fixes = append(fixes, fix{mac: j.mac, loc: p})
				}
				fixMu.Unlock()
				if err == nil {
					rec.RecordFix(j.mac, p.Mode, p.X, p.Y, p.Confidence, j.bursts)
				}
			}
		}()
	}

	m := server.NewMetrics(reg)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   batch,
		MinAPs:      3,
		MaxBuffered: 64,
		BurstTTL:    500 * time.Millisecond,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		adq.Push(mac, job{mac: mac, bursts: bursts})
	})
	if err != nil {
		t.Fatal(err)
	}
	collector.SetMetrics(m)
	collector.SetQuarantine(breakers.Allow)
	collector.SetTap(rec.TapPacket)
	stopSweeper := collector.StartSweeper(100 * time.Millisecond)
	defer stopSweeper()

	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMetrics(m)
	srv.SetEventSink(breakers)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	waitFor := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	goroutinesBefore := runtime.NumGoroutine()

	// One long-lived connection per AP for the whole soak: the flood is a
	// traffic regime, not a reconnect storm, so breaker churn accounting
	// stays clean. The skewed AP streams through a miscalibrated RF chain
	// (inter-antenna phase ramp + per-packet jitter) for the flood phase.
	var flood atomic.Bool
	flood.Store(true)
	var agents sync.WaitGroup
	for apIdx := range d.APs {
		syns := make([]*sim.Synthesizer, floodTgts)
		macs := make([]string, floodTgts)
		for tgt := 0; tgt < floodTgts; tgt++ {
			syn, err := sim.NewSynthesizer(d.Link(apIdx, tgt), d.Band, d.Array, d.Imp,
				rand.New(rand.NewSource(int64(100*apIdx+tgt))))
			if err != nil {
				t.Fatalf("AP %d target %d: %v", apIdx, tgt, err)
			}
			syns[tgt] = syn
			macs[tgt] = testbed.TargetMAC(tgt)
		}
		var floodSrc apnode.PacketSource = &cycleSource{syns: syns, macs: macs}
		if apIdx == skewedAP {
			// A miscalibrated RF chain (inter-antenna phase ramp + jitter)
			// plus sporadic NaN CSI: the phase skew poisons the AP's burst
			// scores; the non-finite packets are rejected at ingest and
			// each one feeds the AP's breaker a hard failure.
			floodSrc = chaos.WrapSource(floodSrc, chaos.SourceConfig{
				Seed:           int64(7 + apIdx),
				PhaseRampRad:   1.8,
				PhaseJitterRad: 0.8,
				NaNProb:        0.02,
			})
		}
		calmSyn, err := sim.NewSynthesizer(d.Link(apIdx, calmTgt), d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(int64(9000+apIdx))))
		if err != nil {
			t.Fatalf("AP %d calm: %v", apIdx, err)
		}
		agent := &apnode.Agent{
			APID:       apIdx,
			ServerAddr: addr.String(),
			Source: &phasedSource{
				flood:    &flood,
				floodSrc: floodSrc,
				// ~100 ms per packet per AP ⇒ a handful of bursts per
				// second fleet-wide: comfortably under two -race workers'
				// localization throughput, so queue sojourn collapses and
				// the ladder can climb.
				calmSrc:  &apnode.SynthSource{Syn: calmSyn, TargetMAC: testbed.TargetMAC(calmTgt)},
				throttle: 100 * time.Millisecond,
			},
		}
		agents.Add(1)
		go func(a *apnode.Agent, id int) {
			defer agents.Done()
			if err := a.RunWithRetry(ctx, 100, 5*time.Millisecond); err != nil && ctx.Err() == nil {
				t.Errorf("agent %d: %v", id, err)
			}
		}(agent, apIdx)
	}

	// --- Flood phase: ~6 unthrottled target streams per AP against 2
	// workers. Hold the flood until every overload mechanism has visibly
	// engaged. ---
	fixCount := func() int {
		fixMu.Lock()
		defer fixMu.Unlock()
		return len(fixes)
	}
	waitFor("admission control shedding", 30*time.Second, func() bool {
		return adq.ShedTotal() > 0
	})
	waitFor("ladder stepping down", 30*time.Second, func() bool {
		return maxModeSeen.Load() >= int64(admit.ModeFastPath)
	})
	waitFor("skewed AP breaker open", 30*time.Second, func() bool {
		return breakers.State(skewedAP) == admit.StateOpen
	})
	waitFor("flight bundle frozen on breaker open", 30*time.Second, func() bool {
		return len(rec.Bundles()) > 0
	})
	waitFor("fixes flowing during overload", 30*time.Second, func() bool {
		return fixCount() > 0
	})
	floodFixes := fixCount()

	// --- Recovery phase: drop to a trickle the workers easily absorb. The
	// skewed AP is clean now; its breaker must probe it back in, and the
	// ladder must climb back to full fidelity. ---
	flood.Store(false)
	// The reopen backoff may have pushed the cooldown to its 8× cap during
	// the flood (every half-open probe met another NaN), so allow a full
	// backoff cycle before the clean probes land.
	waitFor("breaker closing after probation", 60*time.Second, func() bool {
		return breakers.State(skewedAP) == admit.StateClosed
	})
	waitFor("ladder back to full fidelity", 30*time.Second, func() bool {
		return ladder.Current() == admit.ModeFull
	})
	waitFor("fixes flowing after recovery", 30*time.Second, func() bool {
		return fixCount() > floodFixes
	})

	// A post-recovery full-mode fix for the calm target lands near truth.
	waitFor("full-mode fix for the calm target", 30*time.Second, func() bool {
		fixMu.Lock()
		defer fixMu.Unlock()
		for i := len(fixes) - 1; i >= 0; i-- {
			f := fixes[i]
			if f.mac == testbed.TargetMAC(calmTgt) && f.loc.Mode == admit.ModeFull.String() {
				if e := f.loc.Point.Dist(d.Targets[calmTgt]); e > 3.5 {
					t.Fatalf("recovered fix %v is %.2f m from truth %v", f.loc.Point, e, d.Targets[calmTgt])
				}
				return true
			}
		}
		return false
	})

	// --- Drain: stop intake, stop assembly, drain the queue, join the
	// pool. Nothing may leak. ---
	cancel()
	agents.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	collector.Shutdown()
	adq.Close()
	pool.Wait()
	stopSweeper()

	// The drain dump freezes the full journal and every still-covered fix
	// before the recorder shuts down — the bundle CI hands to the replay
	// gate.
	drainBundle, err := rec.DumpNow(flight.TriggerDrain, "soak drain")
	if err != nil {
		t.Fatalf("drain dump: %v", err)
	}
	rec.Close()

	// Every delivered burst respected the hard freshness deadline — the
	// stale-first shed policy means overload manifests as sheds, not as
	// unbounded queue sojourn.
	fixMu.Lock()
	sorted := append([]time.Duration(nil), sojourns...)
	fixMu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) == 0 {
		t.Fatal("no delivered sojourns recorded")
	}
	p99 := sorted[len(sorted)*99/100]
	if p99 > deadline {
		t.Fatalf("p99 delivered sojourn %v exceeds the %v freshness deadline", p99, deadline)
	}

	// Degraded-mode fixes actually happened and carried their mode label.
	degraded := 0
	fixMu.Lock()
	for _, f := range fixes {
		if f.loc.Mode != "" && f.loc.Mode != admit.ModeFull.String() {
			degraded++
		}
	}
	total := len(fixes)
	fixMu.Unlock()
	if degraded == 0 {
		t.Error("no fix was produced in a degraded mode despite the ladder stepping down")
	}

	// The flood pushed well past capacity, so capacity eviction must have
	// fired (alongside whatever the deadline and CoDel shed).
	if shedByReason[reasonIdx[admit.ShedFull]].Load() == 0 {
		t.Error("no capacity eviction at 5× overload — fair shedding never engaged")
	}

	// The pool and the agent goroutines are gone; nothing else grew.
	waitFor("goroutines back to baseline", 10*time.Second, func() bool {
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})

	// The flood left a breaker-open bundle behind, and the drain bundle
	// carries replayable fixes: its frame rings must still cover at least
	// the most recent fixes, and the frames must read back as SFT1.
	sawBreakerBundle := false
	for _, b := range rec.Bundles() {
		if strings.HasSuffix(b.Name, "-"+string(flight.TriggerBreakerOpen)) {
			sawBreakerBundle = true
		}
	}
	if !sawBreakerBundle {
		t.Error("no breaker-open flight bundle despite the breaker tripping")
	}
	loaded, err := flight.LoadBundle(rec.BundlePath(drainBundle))
	if err != nil {
		t.Fatalf("loading drain bundle: %v", err)
	}
	if len(loaded.Packets) == 0 {
		t.Error("drain bundle has no frames")
	}
	coveredFixes := 0
	for _, fr := range loaded.Manifest.Fixes {
		if fr.Covered {
			coveredFixes++
		}
	}
	if len(loaded.Manifest.Fixes) > 0 && coveredFixes == 0 {
		t.Error("drain bundle recorded fixes but none is frame-covered — rings evicted everything")
	}

	t.Logf("soak: %d fixes (%d degraded), p99 sojourn %v, sheds full=%d stale=%d codel=%d drain=%d, max mode %v, breaker trips=%v",
		total, degraded, p99,
		shedByReason[0].Load(), shedByReason[1].Load(), shedByReason[2].Load(), shedByReason[3].Load(),
		admit.Mode(maxModeSeen.Load()), breakers.Snapshot())
}
