package spotfi

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/chaos"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/quality"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// TestQualityObservabilityEndToEnd drives the deployed path over real TCP
// with one AP's NIC phase-skewed (a miscalibrated RF chain plus per-packet
// phase jitter — faults invisible to framing-level defenses) and asserts
// the estimate-quality layer sees it: the skewed AP's health on
// /debug/quality degrades below every healthy AP's, its per-burst
// confidence contribution is the lowest, and /metrics exports the
// spotfi_quality_score histogram and per-AP spotfi_ap_health gauges.
func TestQualityObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-system run")
	}
	d := testbed.Office(42)
	const (
		targetIdx = 4
		skewedAP  = 0
		batch     = 8
		waves     = 6
	)

	reg := obs.NewRegistry()
	monitor := quality.NewMonitor(reg, quality.Config{})
	cfg := DefaultConfig(d.Bounds)
	cfg.QualityMonitor = monitor
	loc, err := New(cfg, deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}

	fixes := make(chan Location, waves+2)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize: batch, MinAPs: len(d.APs), MaxBuffered: 64,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		p, _, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			t.Errorf("localize: %v", err)
			return
		}
		select {
		case fixes <- p:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Each wave streams one full burst from every AP; several waves give
	// the drift detector enough bursts to settle per-AP baselines.
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for apIdx := range d.APs {
			syn, err := sim.NewSynthesizer(d.Link(apIdx, targetIdx), d.Band, d.Array, d.Imp,
				rand.New(rand.NewSource(int64(1000*wave+apIdx))))
			if err != nil {
				t.Fatalf("AP %d: %v", apIdx, err)
			}
			agent := &apnode.Agent{
				APID:       apIdx,
				ServerAddr: addr.String(),
				Source: &apnode.SynthSource{
					Syn:       syn,
					TargetMAC: testbed.TargetMAC(targetIdx),
					Limit:     batch,
				},
			}
			if apIdx == skewedAP {
				// Constant inter-antenna ramp biases the AoA ~35°; the
				// per-packet jitter makes it wander another ±15° within
				// each burst.
				agent.Source = chaos.WrapSource(agent.Source, chaos.SourceConfig{
					Seed:           int64(7000 + wave),
					PhaseRampRad:   1.8,
					PhaseJitterRad: 0.8,
				})
			}
			wg.Add(1)
			go func(a *apnode.Agent, id int) {
				defer wg.Done()
				if err := a.RunWithRetry(ctx, 10, 5*time.Millisecond); err != nil && ctx.Err() == nil {
					t.Errorf("agent %d: %v", id, err)
				}
			}(agent, apIdx)
		}
		wg.Wait()
	}

	deadline := time.Now().Add(30 * time.Second)
	got := 0
	for got < waves && time.Now().Before(deadline) {
		select {
		case fix := <-fixes:
			got++
			if fix.Confidence <= 0 || fix.Confidence > 1 {
				t.Fatalf("fix confidence %v out of (0,1]", fix.Confidence)
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	if got < waves {
		t.Fatalf("only %d of %d bursts localized", got, waves)
	}

	// --- /debug/quality: the skewed AP reads unhealthy, the rest do not. ---
	rr := httptest.NewRecorder()
	monitor.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/quality = %d: %s", rr.Code, rr.Body.String())
	}
	var snap quality.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/quality JSON: %v", err)
	}
	if snap.Bursts < waves {
		t.Fatalf("monitor saw %d bursts, want ≥ %d", snap.Bursts, waves)
	}
	if len(snap.APs) != len(d.APs) {
		t.Fatalf("scoreboard has %d APs, want %d: %+v", len(snap.APs), len(d.APs), snap.APs)
	}
	healthByAP := map[int]float64{}
	for _, ap := range snap.APs {
		healthByAP[ap.APID] = ap.Health
	}
	minHealthy := 1.0
	for ap, h := range healthByAP {
		if ap != skewedAP && h < minHealthy {
			minHealthy = h
		}
	}
	if healthByAP[skewedAP] >= minHealthy {
		t.Fatalf("skewed AP %d health %.3f not below healthiest-sick %.3f (%+v)",
			skewedAP, healthByAP[skewedAP], minHealthy, healthByAP)
	}

	// Across the recent bursts the skewed AP's mean per-AP confidence
	// contribution must be the worst of the fleet.
	sum := map[int]float64{}
	n := map[int]int{}
	for _, rec := range snap.Recent {
		for _, aps := range rec.PerAP {
			sum[aps.APID] += aps.Score
			n[aps.APID]++
		}
	}
	if n[skewedAP] == 0 {
		t.Fatalf("no per-AP scores recorded for AP %d: %+v", skewedAP, snap.Recent)
	}
	skewedMean := sum[skewedAP] / float64(n[skewedAP])
	for ap := range sum {
		if ap == skewedAP {
			continue
		}
		if mean := sum[ap] / float64(n[ap]); skewedMean >= mean {
			t.Fatalf("skewed AP %d mean score %.3f not below AP %d's %.3f",
				skewedAP, skewedMean, ap, mean)
		}
	}

	// The HTML scoreboard renders from the same state.
	hr := httptest.NewRecorder()
	monitor.Handler().ServeHTTP(hr, httptest.NewRequest("GET", "/debug/quality?view=html", nil))
	if hr.Code != 200 || !strings.Contains(hr.Body.String(), "<html") {
		t.Fatalf("scoreboard HTML = %d, %d bytes", hr.Code, hr.Body.Len())
	}

	// --- /metrics: the quality series are exported. ---
	mr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(mr, httptest.NewRequest("GET", "/metrics", nil))
	body := mr.Body.String()
	for _, want := range []string{"spotfi_quality_score", "spotfi_quality_bursts_total", `spotfi_ap_health{ap="0"}`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	t.Logf("quality e2e: skewed AP health %.3f vs healthy min %.3f; skewed mean score %.3f",
		healthByAP[skewedAP], minHealthy, skewedMean)
}
