package spotfi

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// tracePage mirrors the /debug/traces JSON shape.
type tracePage struct {
	Recent []traceJSON `json:"recent"`
	Slow   []traceJSON `json:"slow"`
}

type traceJSON struct {
	ID    string     `json:"id"`
	DurNS int64      `json:"dur_ns"`
	Spans []spanJSON `json:"spans"`
}

type spanJSON struct {
	Name   string         `json:"name"`
	Parent int            `json:"parent"`
	DurNS  int64          `json:"dur_ns"`
	Attrs  map[string]any `json:"attrs"`
}

// TestTracedLiveSystemEndToEnd drives real bursts through a live TCP
// server with tracing on for every burst, then scrapes /debug/traces and
// asserts the span tree covers the full pipeline with plausible DSP
// attributes: per-cluster likelihoods, the chosen direct-path AoA/ToF, and
// solver iterations.
func TestTracedLiveSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-system run")
	}
	d := testbed.Office(42)
	const targetIdx = 4
	cfg := DefaultConfig(d.Bounds)
	cfg.ModeLabel = "full" // the degradation rung must be visible on every trace
	loc, err := New(cfg, deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tracer := trace.New(trace.Config{
		SampleEvery: 1, // trace every burst
		Registry:    reg,
		Logger:      testLogger(t),
	})

	fixes := make(chan Point, 8)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize: 8, MinAPs: 5, MaxBuffered: 64,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		p, _, _, err := loc.LocalizeBurstsTraced(bursts, tr)
		// Finish before publishing the fix so the scrape below cannot race
		// the trace into the ring.
		tr.Finish()
		if err != nil {
			t.Errorf("localize: %v", err)
			return
		}
		fixes <- p.Point
	})
	if err != nil {
		t.Fatal(err)
	}
	collector.SetTracer(tracer)
	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for apIdx := range d.APs {
		link := d.Link(apIdx, targetIdx)
		syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(int64(700+apIdx))))
		if err != nil {
			t.Fatalf("AP %d: %v", apIdx, err)
		}
		agent := &apnode.Agent{
			APID:       apIdx,
			ServerAddr: addr.String(),
			Source: &apnode.SynthSource{
				Syn:       syn,
				TargetMAC: testbed.TargetMAC(targetIdx),
				Limit:     8,
			},
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent %d: %v", id, err)
			}
		}(apIdx)
	}
	wg.Wait()

	select {
	case <-fixes:
	case <-time.After(20 * time.Second):
		t.Fatal("no fix produced")
	}

	// Scrape the debug endpoint exactly as an operator would.
	ts := httptest.NewServer(tracer.Handler())
	defer ts.Close()
	var full *traceJSON
	deadline := time.Now().Add(10 * time.Second)
	for full == nil {
		if time.Now().After(deadline) {
			t.Fatal("no complete pipeline trace appeared at /debug/traces")
		}
		res, err := ts.Client().Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		var page tracePage
		err = json.NewDecoder(res.Body).Decode(&page)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range page.Recent {
			if coversPipeline(&page.Recent[i]) {
				full = &page.Recent[i]
				break
			}
		}
		if full == nil {
			time.Sleep(50 * time.Millisecond)
		}
	}

	if full.ID == "" || full.DurNS <= 0 {
		t.Fatalf("trace missing id or duration: %+v", full)
	}
	if full.Spans[0].Name != trace.StageBurst || full.Spans[0].Parent != -1 {
		t.Fatalf("first span is %q (parent %d), want root %q",
			full.Spans[0].Name, full.Spans[0].Parent, trace.StageBurst)
	}
	// The root carries the degradation mode the fix was computed in.
	if mode, ok := full.Spans[0].Attrs["mode"].(string); !ok || mode != "full" {
		t.Fatalf("root span mode attr = %v, want \"full\": %v", full.Spans[0].Attrs["mode"], full.Spans[0].Attrs)
	}
	byName := map[string][]spanJSON{}
	for _, sp := range full.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		if sp.Name != trace.StageBurst && (sp.Parent < 0 || sp.Parent >= len(full.Spans)) {
			t.Fatalf("span %q has dangling parent %d", sp.Name, sp.Parent)
		}
	}
	for _, stage := range trace.PipelineStages() {
		spans := byName[stage]
		if len(spans) == 0 {
			t.Fatalf("stage %q missing from trace %s", stage, full.ID)
		}
		nonzero := false
		for _, sp := range spans {
			if sp.DurNS > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Fatalf("stage %q has no span with nonzero duration", stage)
		}
	}

	// Direct-path selection carries Eq. 8 likelihoods and the chosen AoA/ToF.
	sel := byName[trace.StageSelect][0]
	ls, ok := sel.Attrs["likelihoods"].([]any)
	if !ok || len(ls) == 0 {
		t.Fatalf("select span lacks per-cluster likelihoods: %v", sel.Attrs)
	}
	for _, key := range []string{"aoa_deg", "tof_ns", "likelihood"} {
		if _, ok := sel.Attrs[key].(float64); !ok {
			t.Fatalf("select span lacks %s: %v", key, sel.Attrs)
		}
	}

	// The solver span records its iteration count and the solution.
	lsp := byName[trace.StageLocate][0]
	if iters, ok := lsp.Attrs["iters"].(float64); !ok || iters <= 0 {
		t.Fatalf("locate span lacks positive iters: %v", lsp.Attrs)
	}
	for _, key := range []string{"x", "y", "aps"} {
		if _, ok := lsp.Attrs[key].(float64); !ok {
			t.Fatalf("locate span lacks %s: %v", key, lsp.Attrs)
		}
	}

	// Eigenstructure diagnostics from the MUSIC stage.
	esp := byName[trace.StageEstimate][0]
	for _, key := range []string{"eigen_sweeps", "signal_dim", "eigen_gap_db", "peaks"} {
		if _, ok := esp.Attrs[key].(float64); !ok {
			t.Fatalf("estimate span lacks %s: %v", key, esp.Attrs)
		}
	}

	// The per-stage latency histograms on /metrics saw the same spans.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	reg.Handler().ServeHTTP(rec, req)
	if body := rec.Body.String(); !strings.Contains(body, `spotfi_trace_span_seconds_count{span="locate"}`) {
		t.Fatalf("trace histograms missing from /metrics:\n%.2000s", body)
	}
}

func coversPipeline(tr *traceJSON) bool {
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = true
	}
	for _, stage := range trace.PipelineStages() {
		if !seen[stage] {
			return false
		}
	}
	return true
}

// TestSampledOutBurstPathAllocs proves the acceptance bar for tracing
// overhead: with a live tracer whose sampler rejects the burst, the exact
// sequence of trace calls the server and pipeline make allocates nothing.
func TestSampledOutBurstPathAllocs(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1 << 30})
	// The first burst after start is sampled in; consume it so every Start
	// below takes the sampled-out path, as ~all bursts do in production.
	tracer.Start(trace.StageBurst).Finish()

	t0 := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		// Collector side.
		tr := tracer.StartAt(trace.StageBurst, t0)
		asm := tr.Root().StartSpanAt(trace.StageAssemble, t0)
		asm.SetStr("mac", "aa:bb")
		asm.SetInt("aps", 6)
		asm.SetInt("packets", 48)
		asm.End()
		// Pipeline side, per AP.
		apSpan := tr.Root().StartSpan(trace.StageAP)
		apSpan.SetInt("ap", 3)
		ssp := apSpan.StartSpan(trace.StageSanitize)
		ssp.SetFloat("sto_ns", 12.5)
		ssp.End()
		esp := apSpan.StartSpan(trace.StageEstimate)
		esp.SetInt("eigen_sweeps", 7)
		esp.End()
		csp := apSpan.StartSpan(trace.StageCluster)
		csp.SetInt("clusters", 4)
		csp.End()
		sel := apSpan.StartSpan(trace.StageSelect)
		if sel.Enabled() {
			// Composite attrs are built only when the span is live, so the
			// sampled-out path must never reach this.
			t.Fatal("sampled-out span reported Enabled")
		}
		sel.End()
		apSpan.End()
		lsp := tr.Root().StartSpan(trace.StageLocate)
		lsp.SetInt("iters", 40)
		lsp.End()
		tr.Finish()
	})
	if allocs != 0 {
		t.Fatalf("sampled-out burst path allocated %v allocs/op, want 0", allocs)
	}
}

// TestSampledOutTracingIsBehaviorNeutral runs the same burst with tracing
// sampled out and with no tracer, and requires identical results: sampling
// must never perturb the DSP.
func TestSampledOutTracingIsBehaviorNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline")
	}
	d := testbed.Office(7)
	loc, err := New(DefaultConfig(d.Bounds), deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}
	bursts := make(map[int][]*Packet)
	for a := range d.APs {
		b, err := d.Burst(a, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		bursts[a] = b
	}

	tracer := trace.New(trace.Config{SampleEvery: 1 << 30})
	tracer.Start(trace.StageBurst).Finish() // consume the sampled-in slot
	tr := tracer.StartAt(trace.StageBurst, time.Now())
	if tr != nil {
		t.Fatal("burst unexpectedly sampled in")
	}
	p1, _, _, err := loc.LocalizeBurstsTraced(bursts, tr)
	tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _, err := loc.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("sampled-out traced run %v differs from untraced run %v", p1, p2)
	}
}
