package spotfi

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/chaos"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
	"spotfi/internal/wire"
)

// TestChaosSoak drives the full deployed path — AP agents → wire → server
// → collector → localization — while injecting every fault class
// internal/chaos knows: write stalls and half-open connections (reaped by
// read deadlines), mid-frame resets, byte corruption, NaN CSI, duplicated
// and reordered packets, and a poisoned burst that panics the handler.
// The server must stay up, count each fault class on a dedicated obs
// counter, evict the stale partial bursts the faulty APs leave behind,
// and keep localizing the healthy target throughout.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak run")
	}
	d := testbed.Office(42)
	const (
		targetIdx = 4
		poisonMAC = "poison-target"
		batch     = 8
	)
	healthyMAC := testbed.TargetMAC(targetIdx)
	loc, err := New(DefaultConfig(d.Bounds), deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}

	fixes := make(chan Point, 16)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   batch,
		MinAPs:      5,
		MaxBuffered: 64,
		BurstTTL:    600 * time.Millisecond,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		switch mac {
		case poisonMAC:
			panic("chaos: poisoned burst reached the pipeline")
		case healthyMAC:
			p, _, _, err := loc.LocalizeBursts(bursts)
			if err != nil {
				t.Errorf("localize: %v", err)
				return
			}
			select {
			case fixes <- p.Point:
			default:
			}
		default:
			t.Errorf("burst completed for unexpected MAC %s", mac)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := server.NewMetrics(obs.NewRegistry())
	collector.SetMetrics(m)
	stopSweeper := collector.StartSweeper(150 * time.Millisecond)
	defer stopSweeper()

	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMetrics(m)
	srv.SetTimeouts(200*time.Millisecond, 300*time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	// newAgent builds an agent streaming `limit` synthesized packets for
	// mac, as AP apID, over the geometry of office AP apIdx.
	newAgent := func(apIdx, apID int, mac string, limit int, seed int64) *apnode.Agent {
		syn, err := sim.NewSynthesizer(d.Link(apIdx, targetIdx), d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("AP %d: %v", apIdx, err)
		}
		return &apnode.Agent{
			APID:       apID,
			ServerAddr: addr.String(),
			Source:     &apnode.SynthSource{Syn: syn, TargetMAC: mac, Limit: limit},
		}
	}

	runHealthyWave := func(seedBase int64) {
		var wg sync.WaitGroup
		for apIdx := range d.APs {
			agent := newAgent(apIdx, apIdx, healthyMAC, 2*batch, seedBase+int64(apIdx))
			// Benign NIC chaos on two APs: duplicates, reordering, clock
			// skew. Burst assembly and localization must shrug these off.
			if apIdx < 2 {
				agent.Source = chaos.WrapSource(agent.Source, chaos.SourceConfig{
					Seed: seedBase + int64(apIdx), DupProb: 0.1, ReorderProb: 0.1,
					SkewNs: 3_000_000, JitterNs: 50_000,
				})
			}
			wg.Add(1)
			go func(a *apnode.Agent, id int) {
				defer wg.Done()
				if err := a.RunWithRetry(ctx, 10, 5*time.Millisecond); err != nil && ctx.Err() == nil {
					t.Errorf("healthy agent %d: %v", id, err)
				}
			}(agent, apIdx)
		}
		wg.Wait()
	}

	// --- Wave 1: healthy APs localize while every wire fault fires. ---

	var faultWG sync.WaitGroup

	// Half-open connection: dials, never sends a hello. The handshake
	// deadline must reap it.
	halfOpen, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer halfOpen.Close()

	// Post-handshake idle AP: delivers one packet for a target no other
	// AP hears, then goes silent — reaped by the idle deadline, and its
	// stale packet must be TTL-evicted rather than pinned forever.
	idleConn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer idleConn.Close()
	if err := wire.WriteFrame(idleConn, wire.EncodeHello(91)); err != nil {
		t.Fatal(err)
	}
	staleSyn, err := sim.NewSynthesizer(d.Link(0, targetIdx), d.Band, d.Array, d.Imp,
		rand.New(rand.NewSource(9100)))
	if err != nil {
		t.Fatal(err)
	}
	stalePkt := staleSyn.NextPacket("stale-target")
	stalePkt.APID = 91
	staleFrame, err := wire.EncodeCSIReport(stalePkt)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(idleConn, staleFrame); err != nil {
		t.Fatal(err)
	}

	// Stalled writer: every write pauses far longer than the handshake
	// deadline (slow-loris).
	stallDial, stallStats := chaos.Dialer(chaos.ConnConfig{
		Seed: 71, StallProb: 1, Stall: 900 * time.Millisecond,
	})
	stallAgent := newAgent(0, 92, "stall-target", 4, 7100)
	stallAgent.Dial = stallDial
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		stallAgent.Run(ctx) //lint:allow errdrop the stalled conn is expected to die; the server-side counter is the assertion
	}()

	// Mid-frame resets.
	resetDial, resetStats := chaos.Dialer(chaos.ConnConfig{Seed: 72, ResetProb: 0.15})
	resetAgent := newAgent(1, 93, "reset-target", 30, 7200)
	resetAgent.Dial = resetDial
	resetAgent.HealthyReset = -1
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		resetAgent.RunWithRetry(ctx, 1000, time.Millisecond) //lint:allow errdrop resets are injected on purpose; counters are the assertion
	}()

	// Byte corruption.
	corruptDial, corruptStats := chaos.Dialer(chaos.ConnConfig{Seed: 73, CorruptProb: 0.5})
	corruptAgent := newAgent(2, 94, "corrupt-target", 20, 7300)
	corruptAgent.Dial = corruptDial
	corruptAgent.HealthyReset = -1
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		corruptAgent.RunWithRetry(ctx, 1000, time.Millisecond) //lint:allow errdrop corruption is injected on purpose; counters are the assertion
	}()

	// NaN CSI shipped over an otherwise healthy connection: each poisoned
	// report must be dropped at the door without closing the stream.
	nanConn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nanConn.Close()
	if err := wire.WriteFrame(nanConn, wire.EncodeHello(95)); err != nil {
		t.Fatal(err)
	}
	nanSyn, err := sim.NewSynthesizer(d.Link(3, targetIdx), d.Band, d.Array, d.Imp,
		rand.New(rand.NewSource(9500)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pkt := nanSyn.NextPacket("nan-target")
		pkt.APID = 95
		f, err := wire.EncodeCSIReport(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if f, err = chaos.PoisonCSIReport(f); err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(nanConn, f); err != nil {
			t.Fatalf("NaN frame %d: the server closed a conn it should keep: %v", i, err)
		}
	}
	// The conn that shipped NaN must still be alive and in sync after the
	// server has processed (and dropped) every poisoned report: Bye must
	// go through and be honored as a clean close, not a reset.
	waitFor("non-finite CSI counted", func() bool { return m.PacketsNonFinite.Value() >= 3 })
	if err := wire.WriteFrame(nanConn, wire.Frame{Type: wire.TypeBye}); err != nil {
		t.Fatalf("NaN conn did not survive: %v", err)
	}

	runHealthyWave(500)

	var fix1 Point
	select {
	case fix1 = <-fixes:
	case <-time.After(20 * time.Second):
		t.Fatal("no fix under chaos")
	}
	truth := d.Targets[targetIdx]
	if e := fix1.Dist(truth); e > 3.5 {
		t.Fatalf("chaos fix %v is %.2f m from truth %v", fix1, e, truth)
	}

	// Every injected fault class fired and was counted on its own
	// counter.
	waitFor("idle/handshake reaps", func() bool { return m.IdleTimeouts.Value() >= 2 })
	waitFor("mid-frame reset counted", func() bool { return m.ConnResets.Value() >= 1 })
	waitFor("corrupt frame counted", func() bool { return m.DecodeErrors.Value() >= 1 })
	if stallStats.Stalls.Value() == 0 {
		t.Error("stall fault never injected")
	}
	if resetStats.Resets.Value() == 0 {
		t.Error("reset fault never injected")
	}
	if corruptStats.Corruptions.Value() == 0 {
		t.Error("corruption fault never injected")
	}

	// --- Wave 2: a poisoned burst panics the handler; the server must
	// quarantine it and keep serving. ---
	var poisonWG sync.WaitGroup
	for i := 0; i < 5; i++ {
		agent := newAgent(i, 10+i, poisonMAC, batch, 600+int64(i))
		poisonWG.Add(1)
		go func(a *apnode.Agent, id int) {
			defer poisonWG.Done()
			if err := a.RunWithRetry(ctx, 10, 5*time.Millisecond); err != nil && ctx.Err() == nil {
				t.Errorf("poison agent %d: %v", id, err)
			}
		}(agent, i)
	}
	poisonWG.Wait()
	waitFor("poisoned burst quarantined", func() bool { return m.BurstPanics.Value() >= 1 })
	q := collector.Quarantined()
	if len(q) == 0 || q[0].TargetMAC != poisonMAC {
		t.Fatalf("quarantine = %+v, want the %s burst", q, poisonMAC)
	}

	// --- Wave 3: after the panic, the server still localizes. ---
	runHealthyWave(800)
	select {
	case p := <-fixes:
		if e := p.Dist(truth); e > 3.5 {
			t.Fatalf("post-panic fix %v is %.2f m from truth %v", p, e, truth)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("no fix after handler panic — server stopped serving")
	}

	// --- Settle: the sweeper must reclaim every stale partial burst the
	// faulty APs left behind, returning the pending gauges to baseline. ---
	cancel() // stop the remaining fault agents
	faultWG.Wait()
	waitFor("stale packets evicted", func() bool { return m.PacketsExpired.Value() >= 1 })
	waitFor("pending gauges back to baseline", func() bool {
		targets, packets := collector.PendingStats()
		return targets == 0 && packets == 0 &&
			m.PendingTargets.Value() == 0 && m.PendingPackets.Value() == 0
	})
	t.Logf("soak: fix error %.2fm; idleTimeouts=%d connResets=%d decodeErrors=%d nonFinite=%d expired=%d panics=%d",
		fix1.Dist(truth), m.IdleTimeouts.Value(), m.ConnResets.Value(), m.DecodeErrors.Value(),
		m.PacketsNonFinite.Value(), m.PacketsExpired.Value(), m.BurstPanics.Value())
}
