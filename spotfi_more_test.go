package spotfi

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

func officeLocalizer(t *testing.T, mutate func(*Config)) (*testbed.Deployment, *Localizer) {
	t.Helper()
	d := testbed.Office(11)
	cfg := DefaultConfig(d.Bounds)
	cfg.Workers = 2
	if mutate != nil {
		mutate(&cfg)
	}
	loc, err := New(cfg, deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}
	return d, loc
}

func TestAPsAccessor(t *testing.T) {
	_, loc := officeLocalizer(t, nil)
	aps := loc.APs()
	if len(aps) != 6 {
		t.Fatalf("APs() returned %d", len(aps))
	}
	seen := map[int]bool{}
	for _, ap := range aps {
		if seen[ap.ID] {
			t.Fatalf("duplicate AP %d", ap.ID)
		}
		seen[ap.ID] = true
	}
}

func TestLocateRejectsUnknownAPReport(t *testing.T) {
	_, loc := officeLocalizer(t, nil)
	reports := []*APReport{
		{APID: 0, AoA: 0, Likelihood: 1, MeanRSSIdBm: -50},
		{APID: 99, AoA: 0, Likelihood: 1, MeanRSSIdBm: -50},
	}
	if _, err := loc.Locate(reports); err == nil {
		t.Fatal("unknown AP in report accepted")
	}
}

func TestLocalizeBurstsTooFewAPs(t *testing.T) {
	d, loc := officeLocalizer(t, nil)
	burst, err := d.Burst(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loc.LocalizeBursts(map[int][]*Packet{0: burst}); err == nil {
		t.Fatal("single-AP localization accepted")
	}
}

func TestLocalizeBurstsSkipsDeadAP(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d, loc := officeLocalizer(t, nil)
	bursts := make(map[int][]*Packet)
	for a := range d.APs {
		burst, err := d.Burst(a, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		bursts[a] = burst
	}
	// Corrupt one AP's entire burst: every CSI matrix becomes NaN, so
	// stage 1 fails for that AP but localization must still succeed.
	for _, p := range bursts[3] {
		p.CSI.Values[0][0] = complex(math.NaN(), 0)
	}
	p, reports, skipped, err := loc.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.APID == 3 {
			t.Fatal("dead AP produced a report")
		}
	}
	// The dead AP must be reported, not silently swallowed.
	if len(skipped) != 1 || skipped[0].APID != 3 || skipped[0].Err == nil {
		t.Fatalf("skipped = %v, want exactly AP 3 with its error", skipped)
	}
	if !d.Bounds.Contains(p.Point) {
		t.Fatalf("estimate %v outside bounds", p)
	}
}

func TestProcessBurstPartialFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d, loc := officeLocalizer(t, nil)
	burst, err := d.Burst(0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Half the packets corrupt: the burst must still be processed.
	for i := 0; i < 3; i++ {
		burst[i].CSI.Values[1][1] = complex(math.Inf(1), 0)
	}
	rep, err := loc.ProcessBurst(0, burst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets != 6 {
		t.Fatalf("Packets = %d", rep.Packets)
	}
	ok := 0
	for _, pp := range rep.PerPacket {
		if len(pp) > 0 {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("%d packets survived, want 3", ok)
	}
}

func TestProcessBurstAllFailures(t *testing.T) {
	d, loc := officeLocalizer(t, nil)
	burst, err := d.Burst(0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range burst {
		p.CSI.Values[0][0] = complex(math.NaN(), 0)
	}
	if _, err := loc.ProcessBurst(0, burst); err == nil {
		t.Fatal("all-corrupt burst accepted")
	}
}

func TestSelectionSchemesDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d := testbed.Office(11)
	burst, err := d.Burst(0, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	results := map[SelectionScheme]*APReport{}
	for _, scheme := range []SelectionScheme{SelectLikelihood, SelectMinToF, SelectMaxPower} {
		_, loc := officeLocalizer(t, func(c *Config) { c.Selection = scheme })
		rep, err := loc.ProcessBurst(0, burst)
		if err != nil {
			t.Fatal(err)
		}
		results[scheme] = rep
	}
	// All schemes choose from the same candidate set.
	if len(results[SelectLikelihood].Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// MinToF must return the candidate with the smallest ToF among those
	// reported by the likelihood run (same clustering seed).
	minToF := math.Inf(1)
	for _, c := range results[SelectLikelihood].Candidates {
		minToF = math.Min(minToF, c.ToF)
	}
	chosen := results[SelectMinToF]
	var chosenToF float64
	found := false
	for _, c := range chosen.Candidates {
		if c.AoA == chosen.AoA {
			chosenToF = c.ToF
			found = true
		}
	}
	if !found {
		t.Fatal("selected AoA not among candidates")
	}
	if math.Abs(chosenToF-minToF) > 1e-15 {
		t.Fatalf("min-ToF selection chose ToF %v, min is %v", chosenToF, minToF)
	}
}

func TestSanitizeDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d, loc := officeLocalizer(t, func(c *Config) { c.Sanitize = false })
	burst, err := d.Burst(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.ProcessBurst(0, burst); err != nil {
		t.Fatalf("unsanitized pipeline failed: %v", err)
	}
}

func TestLocalizerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	d, loc1 := officeLocalizer(t, nil)
	_, loc2 := officeLocalizer(t, nil)
	bursts := make(map[int][]*csi.Packet)
	for a := range d.APs {
		b, err := d.Burst(a, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		bursts[a] = b
	}
	p1, _, _, err := loc1.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _, err := loc2.LocalizeBursts(bursts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("same input, different estimates: %v vs %v", p1, p2)
	}
}

func TestPipelineCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	// A localizer configured with the AP's true offsets must select a more
	// accurate direct-path AoA than an uncalibrated one on the same burst.
	d := testbed.Office(11)
	// Synthesize a burst with large known offsets so calibration has
	// something to correct.
	offsets := []float64{0, 0.5, -0.5}
	imp := d.Imp
	imp.AntennaPhaseOffsetsRad = offsets
	syn, err := simNewSynth(d.Link(0, 0), d, imp)
	if err != nil {
		t.Fatal(err)
	}
	burst := syn.Burst("cal-test", 8)

	truth := d.GroundTruthAoA(0, 0)
	run := func(withCal bool) float64 {
		cfg := DefaultConfig(d.Bounds)
		cfg.Workers = 2
		if withCal {
			cfg.Calibration = map[int]CalibrationOffsets{0: offsets}
		}
		loc, err := New(cfg, deploymentAPs(d))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := loc.ProcessBurst(0, burst)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(rep.AoA - truth)
	}
	raw := run(false)
	cal := run(true)
	t.Logf("selection error: uncalibrated %.1f°, calibrated %.1f°", raw*180/math.Pi, cal*180/math.Pi)
	if cal > raw+1e-9 {
		t.Fatalf("calibration hurt: %.3f vs %.3f rad", cal, raw)
	}
}

// simNewSynth builds a synthesizer for a testbed link with custom
// impairments.
func simNewSynth(link *sim.Link, d *testbed.Deployment, imp sim.Impairments) (*sim.Synthesizer, error) {
	return sim.NewSynthesizer(link, d.Band, d.Array, imp, rand.New(rand.NewSource(77)))
}
