package spotfi

import (
	"context"
	"io"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// parseMetrics parses the Prometheus text format into a map keyed by the
// full series name including labels.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndToEnd runs the full deployed architecture with the
// observability layer wired in: AP agents stream CSI over TCP, the server
// assembles bursts, the pipeline localizes, and a /metrics scrape must
// show the ingest counters, stage latency histograms, and pending gauges
// all advancing coherently.
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-system run")
	}
	d := testbed.Office(42)
	const targetIdx = 4
	const packets = 6

	reg := obs.NewRegistry()
	cfg := DefaultConfig(d.Bounds)
	cfg.Metrics = NewPipelineMetrics(reg)
	loc, err := New(cfg, deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}

	fixes := make(chan Point, 8)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize: packets, MinAPs: 6, MaxBuffered: 64,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		p, _, skipped, err := loc.LocalizeBursts(bursts)
		if err != nil {
			t.Errorf("localize: %v", err)
			return
		}
		for _, s := range skipped {
			t.Logf("skipped %v", s)
		}
		fixes <- p.Point
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := server.NewMetrics(reg)
	collector.SetMetrics(sm)
	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMetrics(sm)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The debug endpoint exactly as cmd/spotfi-server mounts it.
	debug := httptest.NewServer(reg.Handler())
	defer debug.Close()

	scrape := func() map[string]float64 {
		res, err := debug.Client().Get(debug.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseMetrics(t, string(body))
	}

	base := scrape()
	if base["spotfi_server_frames_total"] != 0 {
		t.Fatalf("frames counter nonzero before traffic: %v", base["spotfi_server_frames_total"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for apIdx := range d.APs {
		link := d.Link(apIdx, targetIdx)
		syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(int64(700+apIdx))))
		if err != nil {
			t.Fatalf("AP %d: %v", apIdx, err)
		}
		agent := &apnode.Agent{
			APID:       apIdx,
			ServerAddr: addr.String(),
			Source: &apnode.SynthSource{
				Syn:       syn,
				TargetMAC: testbed.TargetMAC(targetIdx),
				Limit:     packets,
			},
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent %d: %v", id, err)
			}
		}(apIdx)
	}
	wg.Wait()

	select {
	case <-fixes:
	case <-time.After(20 * time.Second):
		t.Fatal("no fix produced")
	}

	m := scrape()
	wantPositive := []string{
		"spotfi_server_connects_total",
		"spotfi_server_frames_total",
		"spotfi_server_bursts_emitted_total",
		`spotfi_stage_duration_seconds_count{stage="sanitize"}`,
		`spotfi_stage_duration_seconds_count{stage="estimate"}`,
		`spotfi_stage_duration_seconds_count{stage="cluster"}`,
		`spotfi_stage_duration_seconds_count{stage="locate"}`,
		`spotfi_stage_duration_seconds_sum{stage="estimate"}`,
		"spotfi_packets_processed_total",
		"spotfi_bursts_processed_total",
	}
	for _, name := range wantPositive {
		v, ok := m[name]
		if !ok {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// Per-packet stages ran once per (AP, packet) pair.
	if got := m[`spotfi_stage_duration_seconds_count{stage="estimate"}`]; got < float64(packets*6) {
		t.Errorf("estimate stage observed %v packets, want ≥ %d", got, packets*6)
	}
	// Every burst drained: pruned collector shows empty gauges.
	if m["spotfi_server_pending_targets"] != 0 || m["spotfi_server_pending_packets"] != 0 {
		t.Errorf("pending gauges = %v targets / %v packets, want 0/0",
			m["spotfi_server_pending_targets"], m["spotfi_server_pending_packets"])
	}
	if m["spotfi_server_decode_errors_total"] != 0 {
		t.Errorf("decode errors = %v, want 0", m["spotfi_server_decode_errors_total"])
	}
	// Histogram buckets are cumulative: the +Inf bucket equals the count.
	inf := m[`spotfi_stage_duration_seconds_bucket{stage="locate",le="+Inf"}`]
	if cnt := m[`spotfi_stage_duration_seconds_count{stage="locate"}`]; inf != cnt {
		t.Errorf("locate +Inf bucket %v != count %v", inf, cnt)
	}
}
