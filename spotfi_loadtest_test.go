package spotfi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spotfi/internal/admit"
	"spotfi/internal/csi"
	"spotfi/internal/feed"
	"spotfi/internal/loadgen"
	"spotfi/internal/obs"
	"spotfi/internal/obs/slo"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
)

// TestLoadgenEndToEnd drives a real in-process server — wire listener,
// collector, admission queue, localization workers, fix feed, SLO
// tracker, debug mux — with the open-loop load generator, and checks the
// whole measurement chain: fixes stream back with measurable packet→fix
// latency, localization error against the scene's ground truth is sane,
// the surge phase sheds at the admission queue, and the SLO tracker sees
// the burn.
func TestLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("load-generator soak")
	}
	scene, err := loadgen.NewScene(loadgen.SceneConfig{
		Seed: 42, APs: 5, Targets: 8, Positions: 6, APsPerTarget: 3, Batch: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	fixes := feed.New(feed.Config{Metrics: feed.NewMetrics(reg)})
	defer fixes.Close()
	fixLatency := reg.Histogram("spotfi_fix_latency_seconds",
		"End-to-end packet→fix latency.", obs.ExpBuckets(100e-6, 10, 5), nil)

	// Localizer over the scene's AP poses.
	aps := make([]AP, len(scene.APs))
	for i, ap := range scene.APs {
		aps[i] = AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	cfg := DefaultConfig(scene.Cfg.Bounds)
	cfg.Metrics = NewPipelineMetrics(reg)
	loc, err := New(cfg, aps)
	if err != nil {
		t.Fatal(err)
	}

	adq := admit.NewQueue(admit.QueueConfig{
		Capacity: 16,
		Target:   60 * time.Millisecond,
		Deadline: 400 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		Metrics:  admit.NewQueueMetrics(reg),
	})

	slos := slo.New(slo.Config{
		FastWindow:    2 * time.Second,
		SlowWindow:    4 * time.Second,
		Tick:          100 * time.Millisecond,
		BurnThreshold: 2,
	})
	slos.Add(slo.LatencyObjective("fix_latency", "packet→fix latency", fixLatency, 1, 0.99))
	slos.Add(slo.RatioObjective("admit_shed", "bursts delivered vs shed", 0.95, func() (uint64, uint64) {
		delivered := adq.DeliveredTotal()
		return delivered, delivered + adq.ShedTotal()
	}))
	slos.Register(reg)
	stopSLO := slos.Start()
	defer stopSLO()

	type job struct {
		mac    string
		bursts map[int][]*csi.Packet
	}
	// One deliberately slowed worker caps fix throughput far below the
	// surge phase's offered rate, so admission shedding engages
	// deterministically.
	const workerSlowdown = 25 * time.Millisecond
	var pool sync.WaitGroup
	pool.Add(1)
	go func() {
		defer pool.Done()
		for {
			it, _, ok := adq.Pop()
			if !ok {
				return
			}
			j := it.Payload.(job)
			time.Sleep(workerSlowdown)
			var captureNs int64
			for _, pkts := range j.bursts {
				for _, p := range pkts {
					if p.TimestampNs > captureNs {
						captureNs = p.TimestampNs
					}
				}
			}
			p, _, _, err := loc.LocalizeBursts(j.bursts)
			if err != nil {
				continue
			}
			emit := time.Now().UnixNano()
			if lat := float64(emit-captureNs) / 1e9; captureNs > 0 && lat >= 0 && lat < 600 {
				fixLatency.Observe(lat)
			}
			fixes.Publish(feed.Fix{
				MAC: j.mac, X: p.X, Y: p.Y, Confidence: p.Confidence,
				Mode: p.Mode, CaptureNs: captureNs, EmitNs: emit, APs: len(j.bursts),
			})
		}
	}()

	m := server.NewMetrics(reg)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   scene.Cfg.Batch,
		MinAPs:      scene.Cfg.APsPerTarget,
		MaxBuffered: 64,
		BurstTTL:    500 * time.Millisecond,
	}, func(mac string, bursts map[int][]*csi.Packet, _ *trace.Trace) {
		adq.Push(mac, job{mac: mac, bursts: bursts})
	})
	if err != nil {
		t.Fatal(err)
	}
	collector.SetMetrics(m)
	stopSweeper := collector.StartSweeper(100 * time.Millisecond)
	defer stopSweeper()

	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMetrics(m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/fixes", fixes.Handler())
	mux.Handle("/debug/slo", slos.Handler())
	debug := httptest.NewServer(mux)
	defer debug.Close()

	// Warm at a rate one slowed worker absorbs, then surge far past it.
	phases, err := loadgen.ParsePhases("warm:2s@4,surge:3s@80")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.RunConfig{
		ServerAddr: addr.String(),
		DebugURL:   debug.URL,
		Scene:      scene,
		Phases:     phases,
		Settle:     1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clean teardown before asserting: no goroutine should still be
	// feeding the stats we read.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	collector.Shutdown()
	adq.Close()
	pool.Wait()

	if res.FeedErr != "" {
		t.Fatalf("feed error: %s", res.FeedErr)
	}
	if res.SendErrs != 0 {
		t.Fatalf("%d AP streams lost", res.SendErrs)
	}
	if res.TotalFixes == 0 {
		t.Fatal("no fixes flowed")
	}
	if len(res.Phases) != 2 {
		t.Fatalf("%d phases, want 2", len(res.Phases))
	}
	warm, surge := res.Phases[0], res.Phases[1]

	if warm.Offered == 0 || surge.Offered <= warm.Offered {
		t.Fatalf("offered bursts warm=%d surge=%d", warm.Offered, surge.Offered)
	}
	if warm.Fixes == 0 {
		t.Fatal("warm phase produced no fixes")
	}
	// Latency was measured end to end, with plausible values: at least
	// the worker slowdown, under the test's whole runtime.
	if warm.Latency.Count() == 0 {
		t.Fatal("no latency samples in warm phase")
	}
	if p50 := warm.Latency.Quantile(0.5); p50 < workerSlowdown.Seconds() || p50 > 30 {
		t.Fatalf("warm p50 latency %.4fs implausible", p50)
	}
	// Ground truth maps back through the MAC: localization error is sane
	// for a full-fidelity fix (decimeters-to-meters, not tens of meters).
	if len(warm.Errors) == 0 {
		t.Fatal("no localization-error samples in warm phase")
	}
	best := warm.Errors[0]
	for _, e := range warm.Errors {
		if e < best {
			best = e
		}
	}
	if best > 8 {
		t.Fatalf("best warm-phase error %.2fm — ground-truth mapping is broken", best)
	}

	// The surge overwhelmed the slowed worker: admission control shed,
	// and the generator saw it in the /metrics deltas.
	if surge.Counters.Shed == 0 {
		t.Fatal("surge phase shed nothing — overload never engaged")
	}
	if surge.Counters.Delivered == 0 {
		t.Fatal("surge phase delivered nothing")
	}
	if adq.ShedTotal() == 0 || adq.DeliveredTotal() == 0 {
		t.Fatalf("queue totals shed=%d delivered=%d", adq.ShedTotal(), adq.DeliveredTotal())
	}

	// The SLO layer saw the same story: the snapshot parses, covers both
	// objectives, and the shed objective's fast window is burning hot.
	var st slo.Status
	if err := json.Unmarshal(res.SLO, &st); err != nil {
		t.Fatalf("/debug/slo snapshot: %v\n%s", err, res.SLO)
	}
	if len(st.Objectives) != 2 {
		t.Fatalf("SLO snapshot has %d objectives, want 2", len(st.Objectives))
	}
	var shedObj *slo.ObjectiveStatus
	for i := range st.Objectives {
		if st.Objectives[i].Name == "admit_shed" {
			shedObj = &st.Objectives[i]
		}
	}
	if shedObj == nil {
		t.Fatalf("admit_shed objective missing: %s", res.SLO)
	}
	fast := shedObj.Windows[0]
	if fast.Total == 0 || fast.BadFraction == 0 {
		t.Fatalf("shed SLO fast window saw no burn: %+v", fast)
	}

	// The report derives without losing the story.
	report := loadgen.NewReport("e2e", time.Now().UTC().Format(time.RFC3339), loadgen.ReportOpts{}, res)
	if report.Phases[1].ShedRate == 0 {
		t.Fatal("report lost the surge shed rate")
	}
	if report.Phases[0].LatencyP50Ms == 0 || report.Phases[0].ErrMedianM == 0 {
		t.Fatalf("report lost warm-phase latency/error: %+v", report.Phases[0])
	}
	t.Logf("e2e: %d fixes, warm p50 %.1fms err median %.2fm, surge shed rate %.2f",
		res.TotalFixes, report.Phases[0].LatencyP50Ms, report.Phases[0].ErrMedianM, report.Phases[1].ShedRate)
}
