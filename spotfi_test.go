package spotfi

import (
	"math"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/stats"
	"spotfi/internal/testbed"
)

func deploymentAPs(d *testbed.Deployment) []AP {
	aps := make([]AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	return aps
}

func TestEndToEndOfficeLocalization(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is expensive")
	}
	d := testbed.Office(1)
	loc, err := New(DefaultConfig(d.Bounds), deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}
	const packets = 10
	var errs []float64
	for ti := 0; ti < 8; ti++ {
		bursts := make(map[int][]*Packet)
		for a := range d.APs {
			b, err := d.Burst(a, ti, packets)
			if err != nil {
				t.Fatal(err)
			}
			bursts[a] = b
		}
		p, reports, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			t.Fatalf("target %d: %v", ti, err)
		}
		errs = append(errs, p.Dist(d.Targets[ti]))
		// Every fix carries a confidence score; clean simulated bursts
		// from 6 LoS-rich APs should not look doubtful.
		if p.Confidence <= 0.3 || p.Confidence > 1 {
			t.Fatalf("target %d: confidence %.3f (quality %+v), want (0.3, 1]", ti, p.Confidence, p.Quality)
		}
		for _, r := range reports {
			if r.Margin < 0 || r.Margin > 1 {
				t.Fatalf("AP %d margin %v out of [0,1]", r.APID, r.Margin)
			}
			if math.IsNaN(r.EigenGapDB) || math.IsNaN(r.STOMeanNs) {
				t.Fatalf("AP %d burst diagnostics missing: gap=%v sto=%v", r.APID, r.EigenGapDB, r.STOMeanNs)
			}
		}
	}
	med := stats.Median(errs)
	t.Logf("office end-to-end: median %.2f m over %d targets (errors %v)", med, len(errs), errs)
	if med > 1.0 {
		t.Fatalf("median localization error %.2f m, want ≤ 1.0 m", med)
	}
}

func TestEndToEndAoAEstimation(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is expensive")
	}
	// On LoS links the selected direct-path AoA should be within a few
	// degrees of ground truth (paper: median < 5° in LoS).
	d := testbed.Office(2)
	loc, err := New(DefaultConfig(d.Bounds), deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}
	var errsDeg []float64
	for ti := 0; ti < 6; ti++ {
		los := map[int]bool{}
		for _, a := range d.LoSAPs(ti) {
			los[a] = true
		}
		for a := range d.APs {
			if !los[a] {
				continue
			}
			burst, err := d.Burst(a, ti, 10)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := loc.ProcessBurst(a, burst)
			if err != nil {
				t.Fatal(err)
			}
			truth := d.GroundTruthAoA(a, ti)
			errsDeg = append(errsDeg, geom.Deg(math.Abs(rep.AoA-truth)))
		}
	}
	if len(errsDeg) == 0 {
		t.Fatal("no LoS links found")
	}
	med := stats.Median(errsDeg)
	t.Logf("LoS direct-path AoA: median %.1f° over %d links", med, len(errsDeg))
	if med > 6 {
		t.Fatalf("median LoS AoA error %.1f°, want ≤ 6°", med)
	}
}

func TestLocalizerConstruction(t *testing.T) {
	b := Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	aps := []AP{{ID: 0, Pos: Point{X: 0, Y: 0}}, {ID: 1, Pos: Point{X: 10, Y: 0}}}
	if _, err := New(DefaultConfig(b), aps); err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(b), nil); err == nil {
		t.Fatal("no APs accepted")
	}
	dup := []AP{{ID: 0}, {ID: 0}}
	if _, err := New(DefaultConfig(b), dup); err == nil {
		t.Fatal("duplicate AP IDs accepted")
	}
	bad := DefaultConfig(b)
	bad.Music.MaxPaths = 0
	if _, err := New(bad, aps); err == nil {
		t.Fatal("invalid music params accepted")
	}
	badL := DefaultConfig(b)
	badL.Locate.GridStepM = 0
	if _, err := New(badL, aps); err == nil {
		t.Fatal("invalid locate params accepted")
	}
}

func TestProcessBurstErrors(t *testing.T) {
	b := Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	aps := []AP{{ID: 0}, {ID: 1, Pos: Point{X: 10}}}
	loc, err := New(DefaultConfig(b), aps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.ProcessBurst(99, nil); err == nil {
		t.Fatal("unknown AP accepted")
	}
	if _, err := loc.ProcessBurst(0, nil); err == nil {
		t.Fatal("empty burst accepted")
	}
}

func TestSelectionSchemeString(t *testing.T) {
	if SelectLikelihood.String() != "spotfi" || SelectMinToF.String() != "min-tof" ||
		SelectMaxPower.String() != "max-power" || SelectionScheme(99).String() != "unknown" {
		t.Fatal("SelectionScheme.String mismatch")
	}
}

func TestGroundTruthAoABroadside(t *testing.T) {
	ap := AP{Pos: Point{X: 0, Y: 0}, NormalAngle: 0}
	if aoa := GroundTruthAoA(ap, Point{X: 5, Y: 0}); math.Abs(aoa) > 1e-12 {
		t.Fatalf("broadside AoA = %v", aoa)
	}
	if aoa := GroundTruthAoA(ap, Point{X: 5, Y: 5}); math.Abs(aoa-math.Pi/4) > 1e-12 {
		t.Fatalf("45° AoA = %v", aoa)
	}
}
