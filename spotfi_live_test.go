package spotfi

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// TestLiveSystemEndToEnd exercises the full deployed architecture over
// real TCP: simulated AP agents stream CSI reports to the central server,
// the collector assembles bursts, and the SpotFi pipeline localizes.
func TestLiveSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live-system run")
	}
	d := testbed.Office(42)
	const targetIdx = 4
	loc, err := New(DefaultConfig(d.Bounds), deploymentAPs(d))
	if err != nil {
		t.Fatal(err)
	}

	fixes := make(chan Point, 8)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize: 8, MinAPs: 5, MaxBuffered: 64,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		if mac != testbed.TargetMAC(targetIdx) {
			t.Errorf("burst for unexpected MAC %s", mac)
			return
		}
		p, _, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			t.Errorf("localize: %v", err)
			return
		}
		fixes <- p.Point
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for apIdx := range d.APs {
		link := d.Link(apIdx, targetIdx)
		syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(int64(500+apIdx))))
		if err != nil {
			t.Fatalf("AP %d: %v", apIdx, err)
		}
		agent := &apnode.Agent{
			APID:       apIdx,
			ServerAddr: addr.String(),
			Source: &apnode.SynthSource{
				Syn:       syn,
				TargetMAC: testbed.TargetMAC(targetIdx),
				Limit:     8,
			},
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent %d: %v", id, err)
			}
		}(apIdx)
	}
	wg.Wait()

	select {
	case p := <-fixes:
		truth := d.Targets[targetIdx]
		if e := p.Dist(truth); e > 3 {
			t.Fatalf("live fix %v is %v m from truth %v", p, e, truth)
		}
		t.Logf("live fix error: %.2f m", p.Dist(truth))
	case <-time.After(20 * time.Second):
		t.Fatal("no fix produced")
	}
}
