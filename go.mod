module spotfi

go 1.22
