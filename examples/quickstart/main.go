// Quickstart: localize a single WiFi target from simulated CSI.
//
// Six 3-antenna APs surround a 16 m × 10 m office. The target transmits 10
// packets; every AP reports per-packet CSI and RSSI; SpotFi estimates the
// multipath, identifies the direct path per AP, and triangulates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spotfi"
	"spotfi/internal/geom"
	"spotfi/internal/testbed"
)

func main() {
	// The simulated deployment: floor plan, AP placement, channel model.
	deployment := testbed.Office(42)

	// Register the APs with the localizer. In a real deployment these
	// poses come from one-time measurements.
	aps := make([]spotfi.AP, len(deployment.APs))
	for i, ap := range deployment.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(deployment.Bounds), aps)
	if err != nil {
		log.Fatal(err)
	}

	// The target transmits; each AP captures a burst of 10 packets.
	const targetIdx = 4
	const packets = 10
	bursts := make(map[int][]*spotfi.Packet)
	for apIdx := range deployment.APs {
		burst, err := deployment.Burst(apIdx, targetIdx, packets)
		if err != nil {
			log.Printf("AP %d cannot hear the target: %v", apIdx, err)
			continue
		}
		bursts[apIdx] = burst
	}

	// Run the full pipeline: super-resolution → direct path → location.
	estimate, reports, skipped, err := loc.LocalizeBursts(bursts)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range skipped {
		log.Printf("AP %d skipped: %v", s.APID, s.Err)
	}

	truth := deployment.Targets[targetIdx]
	fmt.Printf("ground truth : (%.2f, %.2f) m\n", truth.X, truth.Y)
	fmt.Printf("estimate     : (%.2f, %.2f) m\n", estimate.X, estimate.Y)
	fmt.Printf("error        : %.2f m\n\n", estimate.Dist(truth))

	fmt.Println("per-AP direct path decisions:")
	for _, r := range reports {
		truthAoA := deployment.GroundTruthAoA(r.APID, targetIdx)
		fmt.Printf("  AP %d: AoA %6.1f° (truth %6.1f°)  likelihood %.3g  RSSI %.1f dBm  %d candidates\n",
			r.APID, geom.Deg(r.AoA), geom.Deg(truthAoA), r.Likelihood, r.MeanRSSIdBm, len(r.Candidates))
	}
}
