// Office survey: reproduce the paper's headline experiment (Fig. 7a) at
// example scale — localize every target of the indoor-office deployment
// and print the error distribution for SpotFi next to the 3-antenna
// ArrayTrack baseline.
//
//	go run ./examples/office [-targets N] [-packets N]
package main

import (
	"flag"
	"fmt"
	"log"

	"spotfi/internal/experiments"
	"spotfi/internal/stats"
)

func main() {
	targets := flag.Int("targets", 12, "number of office targets to localize (0 = all 30)")
	packets := flag.Int("packets", 10, "packets per burst")
	flag.Parse()

	result, err := experiments.Fig7aOffice(experiments.Options{
		Seed:       1,
		Packets:    *packets,
		MaxTargets: *targets,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("indoor office deployment, %d packets per burst\n\n", *packets)
	for _, s := range result.Series {
		sum := stats.Summarize(s.Values)
		fmt.Printf("%-22s median %.2f m   p80 %.2f m   (n=%d)\n",
			s.Label, sum.Median, sum.P80, sum.N)
	}
	fmt.Println("\nSpotFi error CDF:")
	xs, ps := stats.NewCDF(result.Series[0].Values).Series(10)
	for i := range xs {
		bar := int(ps[i] * 40)
		fmt.Printf("  ≤ %5.2f m  %5.1f%%  %s\n", xs[i], ps[i]*100, bars(bar))
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
