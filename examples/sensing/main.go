// Sensing: device-free motion detection from CSI.
//
// No device on the moving person — an existing WiFi link between a
// stationary transmitter and an AP acts as the sensor. When someone walks
// near the link, the reflected paths change packet to packet and the CSI
// amplitude profile decorrelates; the detector (internal/sense) flags it.
// This is the first of the paper's future-work applications (Sec. 5).
//
//	go run ./examples/sensing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
	"spotfi/internal/sense"
	"spotfi/internal/sim"
)

func burst(moving bool, n int, seed int64) []*csi.Packet {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{
		Walls: []sim.Wall{{
			Seg:           geom.Segment{A: geom.Point{X: -20, Y: 6}, B: geom.Point{X: 20, Y: 6}},
			LossDB:        14,
			ReflectLossDB: 5,
		}},
		Scatterers: []sim.Scatterer{{Pos: geom.Point{X: 3, Y: 4}, LossDB: 10}},
	}
	rng := rand.New(rand.NewSource(seed))
	link := sim.NewLink(env, sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0.3},
		geom.Point{X: 6, Y: 1}, sim.DefaultLinkConfig(), rng)
	imp := sim.DefaultImpairments()
	if moving {
		imp.NonDirectAoAJitterRad = 0.1
		imp.NonDirectToFJitterNs = 6
		imp.NonDirectGainJitterDB = 4
	} else {
		imp.NonDirectAoAJitterRad = 0
		imp.NonDirectToFJitterNs = 0
		imp.NonDirectGainJitterDB = 0
	}
	syn, err := sim.NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		log.Fatal(err)
	}
	return syn.Burst("sense", n)
}

func main() {
	det, err := sense.New(sense.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A timeline: empty room, someone walks through, empty again.
	phases := []struct {
		name    string
		moving  bool
		packets int
	}{
		{"room empty", false, 30},
		{"person walking", true, 30},
		{"room empty again", false, 30},
	}

	fmt.Printf("%-20s %-8s %s\n", "phase", "score", "decision")
	for _, ph := range phases {
		det.Reset()
		for _, p := range burst(ph.moving, ph.packets, int64(len(ph.name))) {
			dec, done, err := det.Add(p.CSI)
			if err != nil {
				log.Fatal(err)
			}
			if done {
				verdict := "still"
				if dec.Motion {
					verdict = "MOTION"
				}
				fmt.Printf("%-20s %-8.4f %s\n", ph.name, dec.Score, verdict)
			}
		}
	}
}
