// Calibrate: estimate and remove per-antenna phase offsets.
//
// Commodity NICs have unknown static phase offsets between RF chains that
// bias every AoA estimate. This example places a beacon at a known bearing
// in front of a miscalibrated AP, estimates the offsets from its CSI
// (internal/calib), and shows the AoA accuracy on a *different* target
// before and after applying the correction.
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"spotfi/internal/calib"
	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

func main() {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{}
	ap := sim.AP{ID: 0, Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}

	// The AP's (unknown to us) hardware phase offsets: ±30-40°.
	hardware := []float64{0, 0.6, -0.55}
	mkBurst := func(target geom.Point, n int, seed int64) []*csi.Packet {
		rng := rand.New(rand.NewSource(seed))
		link := sim.NewLink(env, ap, target, sim.DefaultLinkConfig(), rng)
		imp := sim.DefaultImpairments()
		imp.AntennaPhaseOffsetsRad = hardware
		syn, err := sim.NewSynthesizer(link, band, array, imp, rng)
		if err != nil {
			log.Fatal(err)
		}
		return syn.Burst("cal", n)
	}

	// Step 1: beacon at a surveyed position straight in front of the AP.
	beacon := geom.Point{X: 2, Y: 0}
	beaconAoA := ap.AoATo(beacon)
	offsets, err := calib.Estimate(mkBurst(beacon, 20, 1), beaconAoA, band, array)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated per-antenna offsets (truth in parentheses):")
	for m, off := range offsets {
		fmt.Printf("  antenna %d: %6.1f°  (%6.1f°)\n",
			m, geom.Deg(off), geom.Deg(hardware[m]-hardware[0]))
	}

	// Step 2: measure a different target with and without the correction.
	target := geom.Point{X: 5, Y: 3}
	truth := ap.AoATo(target)
	burst := mkBurst(target, 5, 2)
	est, err := music.NewAoAEstimator(music.DefaultAoAParams())
	if err != nil {
		log.Fatal(err)
	}

	aoaOf := func(c *csi.Matrix) float64 {
		paths, err := est.EstimatePaths(c)
		if err != nil || len(paths) == 0 {
			log.Fatal("estimation failed")
		}
		return paths[0].AoA
	}

	raw := aoaOf(burst[0].CSI.Clone())
	fixed := burst[0].CSI.Clone()
	if err := calib.Apply(fixed, offsets); err != nil {
		log.Fatal(err)
	}
	corrected := aoaOf(fixed)

	fmt.Printf("\ntarget bearing (truth)  : %6.1f°\n", geom.Deg(truth))
	fmt.Printf("uncalibrated estimate   : %6.1f°  (error %.1f°)\n",
		geom.Deg(raw), geom.Deg(math.Abs(raw-truth)))
	fmt.Printf("calibrated estimate     : %6.1f°  (error %.1f°)\n",
		geom.Deg(corrected), geom.Deg(math.Abs(corrected-truth)))
}
