// Tracking: follow a target moving through the office.
//
// The target walks a rectangular patrol route; at each waypoint it
// transmits a short burst, SpotFi localizes it, and a constant-velocity
// Kalman filter (internal/track) fuses the fixes into a motion track —
// the "motion tracing" application the paper's conclusion points to.
//
//	go run ./examples/tracking [-steps N] [-packets N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"spotfi"
	"spotfi/internal/geom"
	"spotfi/internal/sim"
	"spotfi/internal/stats"
	"spotfi/internal/testbed"
	"spotfi/internal/track"
)

func main() {
	steps := flag.Int("steps", 16, "waypoints along the route")
	packets := flag.Int("packets", 10, "packets per waypoint burst")
	flag.Parse()

	d := testbed.Office(7)
	aps := make([]spotfi.AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(d.Bounds), aps)
	if err != nil {
		log.Fatal(err)
	}

	// Rectangular patrol route inside the office.
	route := patrol(*steps)

	var raw, smooth []float64
	tracker, err := track.New(track.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-16s %-16s %-16s %8s %8s\n",
		"step", "truth", "fix", "track", "fixErr", "trkErr")
	for i, truth := range route {
		bursts := make(map[int][]*spotfi.Packet)
		for a := range d.APs {
			link := sim.NewLink(d.Env, d.APs[a], truth, d.LinkCfg,
				rand.New(rand.NewSource(int64(1000*i+a))))
			syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
				rand.New(rand.NewSource(int64(2000*i+a))))
			if err != nil {
				continue
			}
			bursts[a] = syn.Burst("02:walker", *packets)
		}
		fix, _, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			fmt.Printf("%-6d lost (%v)\n", i, err)
			continue
		}
		// Kalman update: each waypoint is ~2 s apart.
		state, err := tracker.Update(track.Fix{T: 2 * float64(i), Pos: fix.Point})
		if err != nil {
			log.Fatal(err)
		}
		tracked := state.Pos
		fe := fix.Dist(truth)
		te := tracked.Dist(truth)
		raw = append(raw, fe)
		smooth = append(smooth, te)
		fmt.Printf("%-6d (%5.2f, %5.2f)  (%5.2f, %5.2f)  (%5.2f, %5.2f)  %7.2fm %7.2fm\n",
			i, truth.X, truth.Y, fix.X, fix.Y, tracked.X, tracked.Y, fe, te)
	}
	fmt.Printf("\nraw fixes : median %.2f m, p80 %.2f m\n",
		stats.Median(raw), stats.Percentile(raw, 80))
	fmt.Printf("tracked   : median %.2f m, p80 %.2f m\n",
		stats.Median(smooth), stats.Percentile(smooth, 80))
}

// patrol returns n waypoints around a rectangle in the open office area.
func patrol(n int) []geom.Point {
	corners := []geom.Point{{X: 3, Y: 3}, {X: 13, Y: 3}, {X: 13, Y: 7}, {X: 3, Y: 7}}
	pts := make([]geom.Point, 0, n)
	perim := 0.0
	for i := range corners {
		perim += corners[i].Dist(corners[(i+1)%4])
	}
	for k := 0; k < n; k++ {
		s := perim * float64(k) / float64(n)
		for i := range corners {
			a, b := corners[i], corners[(i+1)%4]
			leg := a.Dist(b)
			if s <= leg || i == 3 {
				t := math.Min(s/leg, 1)
				pts = append(pts, geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)})
				break
			}
			s -= leg
		}
	}
	return pts
}
