// Live system: the full deployed architecture of Fig. 1 in one process.
//
// A central server listens on localhost TCP; six AP agents connect and
// stream simulated CSI reports for one target over the wire protocol; the
// server assembles bursts and localizes. This is exactly what
// cmd/spotfi-server and cmd/spotfi-ap do as separate processes.
//
//	go run ./examples/livesystem
package main

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"time"

	"spotfi"
	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	d := testbed.Office(42)
	const targetIdx = 4
	const packetsPerAP = 30

	aps := make([]spotfi.AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(d.Bounds), aps)
	if err != nil {
		logger.Error("localizer init failed", "err", err)
		os.Exit(1)
	}

	// The server localizes every time each of ≥5 APs has 10 fresh packets.
	fixes := make(chan spotfi.Point, 8)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize: 10, MinAPs: 5, MaxBuffered: 100,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		defer tr.Finish()
		p, reports, skipped, err := loc.LocalizeBurstsTraced(bursts, tr)
		// Skipped APs are reported on the error path too: when
		// localization dies for want of usable reports, the per-AP causes
		// are the diagnosis.
		for _, s := range skipped {
			logger.Warn("AP skipped", "mac", mac, "trace", tr.ID(), "ap", s.APID, "err", s.Err)
		}
		if err != nil {
			logger.Warn("localize failed", "mac", mac, "trace", tr.ID(), "err", err)
			return
		}
		logger.Info("target localized", "mac", mac, "trace", tr.ID(),
			"x", p.X, "y", p.Y, "aps", len(reports), "confidence", p.Confidence)
		fixes <- p.Point
	})
	if err != nil {
		logger.Error("collector init failed", "err", err)
		os.Exit(1)
	}
	srv, err := server.New(collector, logger)
	if err != nil {
		logger.Error("server init failed", "err", err)
		os.Exit(1)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	defer srv.Close()
	logger.Info("server listening", "addr", addr.String())

	// Six AP agents stream CSI over real TCP connections.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for apIdx := range d.APs {
		link := d.Link(apIdx, targetIdx)
		syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
			rand.New(rand.NewSource(int64(100+apIdx))))
		if err != nil {
			logger.Warn("AP cannot hear the target", "ap", apIdx, "err", err)
			continue
		}
		agent := &apnode.Agent{
			APID:       apIdx,
			ServerAddr: addr.String(),
			Source: &apnode.SynthSource{
				Syn:       syn,
				TargetMAC: testbed.TargetMAC(targetIdx),
				Limit:     packetsPerAP,
			},
			Interval: 5 * time.Millisecond,
		}
		wg.Add(1)
		//lint:allow gospawn example harness: one WaitGroup-joined agent per simulated AP
		go func(id int) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				logger.Warn("agent exited", "ap", id, "err", err)
			}
		}(apIdx)
	}
	wg.Wait()

	// Agents are done sending, but the server may still be assembling and
	// localizing the final bursts — drain the expected fixes with a
	// deadline instead of racing the handler.
	truth := d.Targets[targetIdx]
	wantFixes := packetsPerAP / 10 // one fix per 10-packet batch
	var n int
	var sumErr float64
	deadline := time.After(20 * time.Second)
drain:
	for n < wantFixes {
		select {
		case p := <-fixes:
			n++
			sumErr += p.Dist(truth)
		case <-deadline:
			break drain
		}
	}
	if n == 0 {
		logger.Error("no fixes produced")
		os.Exit(1)
	}
	fmt.Printf("\nground truth (%.2f, %.2f) m; %d fixes, mean error %.2f m\n",
		truth.X, truth.Y, n, sumErr/float64(n))
}
