#!/usr/bin/env bash
# load_smoke.sh — boot a spotfi-server, drive it with spotfi-loadgen over
# the real wire protocol, and gate the run against the committed
# LOAD_baseline.json. CI runs this as the load-smoke job; it works the
# same from a checkout: scripts/load_smoke.sh [output.json]
#
# The server is pinned to GOMAXPROCS=1 so the soak phase overloads it on
# any runner: the committed baseline was recorded at one core, and the
# point of the soak is to exercise admission shedding and SLO burn, which
# a 16-core runner would otherwise absorb. The server binary is built
# WITHOUT -race — it is the system under measurement, and race
# instrumentation would slow it ~10x and invalidate the latency/throughput
# gates. The load generator (the new, concurrency-heavy client) runs
# under -race; the full server stack already soaks under -race in the
# test job's TestLoadgenEndToEnd.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-LOAD_ci.json}"
PHASES="warm:4s@5,ramp:6s@5..30,soak:8s@150"
WIRE=127.0.0.1:7100
DEBUG=127.0.0.1:7101

go build -o /tmp/spotfi-server ./cmd/spotfi-server
go build -race -o /tmp/spotfi-loadgen ./cmd/spotfi-loadgen

# The generator knows the scene; it tells us the server flags that match
# it (AP poses, batch shape, breaker tolerance for synthetic CSI).
SERVER_FLAGS=$(/tmp/spotfi-loadgen -print-server-flags)

# Admission and SLO windows are scaled to a ~20s run: a 100ms sojourn
# target with a 500ms deadline sheds visibly within the soak, and 30s/5m
# burn windows with a 300ms latency bound register the burn before the
# run ends (production defaults are 5m/1h, far too slow for a smoke).
# shellcheck disable=SC2086  # SERVER_FLAGS is a flag list, not one word
GOMAXPROCS=1 /tmp/spotfi-server -listen "$WIRE" -debug-addr "$DEBUG" \
  $SERVER_FLAGS \
  -admit-target 100ms -admit-deadline 500ms -admit-interval 500ms \
  -slo-latency-bound 300ms -slo-fast-window 30s -slo-slow-window 5m \
  -slo-tick 1s &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -sf "http://$DEBUG/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$DEBUG/healthz" >/dev/null

/tmp/spotfi-loadgen -server "$WIRE" -debug "http://$DEBUG" \
  -phases "$PHASES" -runid ci -out "$OUT" -compare LOAD_baseline.json

# The soak must have burned the SLOs: that is the acceptance signal that
# overload is observable end to end, not just survivable.
SLO=$(curl -sf "http://$DEBUG/debug/slo")
if ! echo "$SLO" | jq -e '.burning' >/dev/null; then
  echo "load_smoke: SLOs did not burn during the soak:" >&2
  echo "$SLO" | jq '.objectives[] | {name, burning, windows}' >&2
  exit 1
fi
echo "load_smoke: pass ($OUT)"
