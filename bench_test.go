// Benchmarks regenerating every table and figure of the paper's evaluation
// (scaled down so `go test -bench=.` completes in minutes; the full-scale
// reproduction is `go run ./cmd/spotfi-bench`), micro-benchmarks of the
// pipeline's hot paths, and ablation benches for the design choices called
// out in DESIGN.md. Figure benches report the headline quality metric via
// b.ReportMetric alongside timing.
package spotfi_test

import (
	"math/rand"
	"testing"

	"spotfi"

	"spotfi/internal/cluster"
	"spotfi/internal/cmat"
	"spotfi/internal/csi"
	"spotfi/internal/dpath"
	"spotfi/internal/experiments"
	"spotfi/internal/locate"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/stats"
	"spotfi/internal/testbed"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Packets: 6, MaxTargets: 4}
}

// reportSeries attaches each series' median to the benchmark output.
func reportSeries(b *testing.B, r *experiments.Result) {
	b.Helper()
	for _, s := range r.Series {
		if len(s.Values) == 0 {
			continue
		}
		b.ReportMetric(stats.Median(s.Values), "median_"+s.Label+"_"+r.Unit)
	}
}

// --- One benchmark per paper figure ---

func BenchmarkFig5Sanitization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Sanitization(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(stats.StdDev(r.Series[0].Values), "raw_tof_stddev_ns")
			b.ReportMetric(stats.StdDev(r.Series[1].Values), "sanitized_tof_stddev_ns")
		}
	}
}

func BenchmarkFig5cClusters(b *testing.B) {
	opts := benchOpts()
	opts.Packets = 30
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5cClusters(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aOffice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7aOffice(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig7bNLoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7bNLoS(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig7cCorridor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7cCorridor(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig8aAoA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8aAoA(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig8bSelection(b *testing.B) {
	opts := benchOpts()
	opts.MaxTargets = 3
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8bSelection(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig9aDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9aDensity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

func BenchmarkFig9bPackets(b *testing.B) {
	opts := benchOpts()
	opts.Packets = 10
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9bPackets(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, r)
		}
	}
}

// --- Micro-benchmarks of the pipeline hot paths ---

func benchCSI(b *testing.B) *csi.Matrix {
	b.Helper()
	d := testbed.Office(1)
	burst, err := d.Burst(0, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	return burst[0].CSI
}

func BenchmarkSmoothCSI(b *testing.B) {
	c := benchCSI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		music.SmoothCSI(c, 2, 15)
	}
}

func BenchmarkGram30x32(b *testing.B) {
	x := music.SmoothCSI(benchCSI(b), 2, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Gram()
	}
}

func BenchmarkEigHermitian30(b *testing.B) {
	r := music.SmoothCSI(benchCSI(b), 2, 15).Gram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmat.EigHermitian(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSanitize(b *testing.B) {
	c := benchCSI(b)
	band := testbed.Office(1).Band
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := c.Clone()
		if _, err := sanitize.ToF(work, band.SubcarrierSpacingHz); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatePaths(b *testing.B) {
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCSI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineAoA(b *testing.B) {
	est, err := music.NewAoAEstimator(music.DefaultAoAParams())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCSI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]cluster.Point, 200)
	for i := range pts {
		pts[i] = cluster.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	cfg := cluster.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessBurst10(b *testing.B) {
	d := testbed.Office(1)
	loc := mustLocalizer(b, d)
	burst, err := d.Burst(0, 0, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.ProcessBurst(0, burst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocateEq9(b *testing.B) {
	d := testbed.Office(1)
	var obs []locate.APObservation
	for a := range d.APs {
		obs = append(obs, locate.APObservation{
			Pos:         d.APs[a].Pos,
			NormalAngle: d.APs[a].NormalAngle,
			AoA:         d.GroundTruthAoA(a, 0),
			RSSIdBm:     -60,
			Likelihood:  1,
		})
	}
	cfg := locate.DefaultConfig(d.Bounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locate.Locate(obs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipelineOneTarget(b *testing.B) {
	d := testbed.Office(1)
	loc := mustLocalizer(b, d)
	bursts := make(map[int][]*spotfi.Packet)
	for a := range d.APs {
		burst, err := d.Burst(a, 0, 10)
		if err != nil {
			b.Fatal(err)
		}
		bursts[a] = burst
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := loc.LocalizeBursts(bursts); err != nil {
			b.Fatal(err)
		}
	}
}

func mustLocalizer(b *testing.B, d *testbed.Deployment) *spotfi.Localizer {
	b.Helper()
	aps := make([]spotfi.AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(d.Bounds), aps)
	if err != nil {
		b.Fatal(err)
	}
	return loc
}

// --- Ablation benches (DESIGN.md Sec. 5) ---

// ablationSelection measures the direct-path selection error of each
// scheme on a fixed set of links and reports the medians.
func BenchmarkAblationSelectionSchemes(b *testing.B) {
	d := testbed.Office(1)
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		errsBy := map[string][]float64{}
		for t := 0; t < 4; t++ {
			for a := range d.APs {
				burst, err := d.Burst(a, t, 6)
				if err != nil {
					continue
				}
				var perPacket [][]music.PathEstimate
				for _, pkt := range burst {
					work := pkt.CSI.Clone()
					if _, err := sanitize.ToF(work, d.Band.SubcarrierSpacingHz); err != nil {
						continue
					}
					paths, err := est.EstimatePaths(work)
					if err != nil {
						continue
					}
					perPacket = append(perPacket, paths)
				}
				cfg := dpath.DefaultConfig()
				cfg.Cluster.K = 7
				res, err := dpath.Identify(perPacket, cfg, rand.New(rand.NewSource(int64(t*100+a))))
				if err != nil {
					continue
				}
				truth := d.GroundTruthAoA(a, t)
				if c, ok := res.Best(); ok {
					errsBy["likelihood"] = append(errsBy["likelihood"], absDeg(c.AoA-truth))
				}
				if c, ok := res.MinToF(); ok {
					errsBy["min-tof"] = append(errsBy["min-tof"], absDeg(c.AoA-truth))
				}
				if c, ok := res.MaxPower(); ok {
					errsBy["max-power"] = append(errsBy["max-power"], absDeg(c.AoA-truth))
				}
			}
		}
		if i == b.N-1 {
			for k, v := range errsBy {
				b.ReportMetric(stats.Median(v), "median_"+k+"_deg")
			}
		}
	}
}

func absDeg(rad float64) float64 {
	if rad < 0 {
		rad = -rad
	}
	return rad * 180 / 3.141592653589793
}

// BenchmarkAblationClusterK compares cluster counts (paper uses 5).
func BenchmarkAblationClusterK(b *testing.B) {
	for _, k := range []int{3, 5, 7} {
		b.Run(itoa(k), func(b *testing.B) {
			d := testbed.Office(1)
			cfg := spotfi.DefaultConfig(d.Bounds)
			cfg.DPath.Cluster.K = k
			cfg.Workers = 1
			loc, err := spotfi.New(cfg, apsOf(d))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				med := localizeFour(b, d, loc)
				if i == b.N-1 {
					b.ReportMetric(med, "median_m")
				}
			}
		})
	}
}

// BenchmarkAblationSanitize toggles Algorithm 1.
func BenchmarkAblationSanitize(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			d := testbed.Office(1)
			cfg := spotfi.DefaultConfig(d.Bounds)
			cfg.Sanitize = on
			cfg.Workers = 1
			loc, err := spotfi.New(cfg, apsOf(d))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				med := localizeFour(b, d, loc)
				if i == b.N-1 {
					b.ReportMetric(med, "median_m")
				}
			}
		})
	}
}

// BenchmarkAblationRobustRounds toggles the IRLS refinement of Eq. 9.
func BenchmarkAblationRobustRounds(b *testing.B) {
	for _, rounds := range []int{0, 2} {
		b.Run(itoa(rounds), func(b *testing.B) {
			d := testbed.Office(1)
			cfg := spotfi.DefaultConfig(d.Bounds)
			cfg.Locate.RobustRounds = rounds
			cfg.Workers = 1
			loc, err := spotfi.New(cfg, apsOf(d))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				med := localizeFour(b, d, loc)
				if i == b.N-1 {
					b.ReportMetric(med, "median_m")
				}
			}
		})
	}
}

// BenchmarkAblationEigenThreshold sweeps the noise-subspace cut.
func BenchmarkAblationEigenThreshold(b *testing.B) {
	for _, name := range []string{"0.005", "0.015", "0.05"} {
		th := map[string]float64{"0.005": 0.005, "0.015": 0.015, "0.05": 0.05}[name]
		b.Run(name, func(b *testing.B) {
			d := testbed.Office(1)
			cfg := spotfi.DefaultConfig(d.Bounds)
			cfg.Music.EigenThreshold = th
			cfg.Workers = 1
			loc, err := spotfi.New(cfg, apsOf(d))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				med := localizeFour(b, d, loc)
				if i == b.N-1 {
					b.ReportMetric(med, "median_m")
				}
			}
		})
	}
}

func apsOf(d *testbed.Deployment) []spotfi.AP {
	aps := make([]spotfi.AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	return aps
}

// localizeFour localizes 4 office targets with 6-packet bursts and returns
// the median error.
func localizeFour(b *testing.B, d *testbed.Deployment, loc *spotfi.Localizer) float64 {
	b.Helper()
	var errs []float64
	for t := 0; t < 4; t++ {
		bursts := make(map[int][]*spotfi.Packet)
		for a := range d.APs {
			burst, err := d.Burst(a, t, 6)
			if err != nil {
				continue
			}
			bursts[a] = burst
		}
		p, _, _, err := loc.LocalizeBursts(bursts)
		if err != nil {
			continue
		}
		errs = append(errs, p.Dist(d.Targets[t]))
	}
	if len(errs) == 0 {
		b.Fatal("no targets localized")
	}
	return stats.Median(errs)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkESPRITAoA(b *testing.B) {
	est, err := music.NewESPRIT(music.DefaultAoAParams())
	if err != nil {
		b.Fatal(err)
	}
	c := benchCSI(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimatorKind compares the grid MUSIC pipeline against
// the search-free JADE pipeline end to end: quality metric + timing.
func BenchmarkAblationEstimatorKind(b *testing.B) {
	for _, kind := range []spotfi.EstimatorKind{spotfi.EstimatorMUSIC, spotfi.EstimatorJADE} {
		b.Run(kind.String(), func(b *testing.B) {
			d := testbed.Office(1)
			cfg := spotfi.DefaultConfig(d.Bounds)
			cfg.Estimator = kind
			cfg.Workers = 1
			loc, err := spotfi.New(cfg, apsOf(d))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				med := localizeFour(b, d, loc)
				if i == b.N-1 {
					b.ReportMetric(med, "median_m")
				}
			}
		})
	}
}
