// Package spotfi is a from-scratch Go implementation of SpotFi
// ("SpotFi: Decimeter Level Localization Using WiFi", Kotaru, Joshi,
// Bharadia, Katti — SIGCOMM 2015): decimeter-level indoor localization on
// commodity 3-antenna WiFi APs using only CSI and RSSI.
//
// The pipeline has three stages, mirroring the paper:
//
//  1. Super-resolution estimation — each packet's 3×30 CSI matrix is
//     sanitized (Algorithm 1) and expanded into the smoothed CSI matrix of
//     Fig. 4, on which 2-D MUSIC jointly resolves the (AoA, ToF) of every
//     multipath component (Sec. 3.1).
//  2. Direct-path identification — per-packet estimates are clustered in
//     the (AoA, ToF) plane and each cluster is scored with the likelihood
//     metric of Eq. 8 (Sec. 3.2).
//  3. Localization — direct-path AoAs, likelihoods, and RSSI from all APs
//     are fused by minimizing the weighted least-squares objective of
//     Eq. 9 (Sec. 3.3).
//
// The Localizer type runs the whole pipeline; the stages are also exposed
// individually for applications that only need AoA estimation or
// direct-path identification.
package spotfi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"spotfi/internal/calib"
	"spotfi/internal/csi"
	"spotfi/internal/dpath"
	"spotfi/internal/geom"
	"spotfi/internal/locate"
	"spotfi/internal/music"
	"spotfi/internal/rf"
	"spotfi/internal/sanitize"
)

// Re-exported building blocks of the public API. These are aliases so the
// values returned by the pipeline interoperate with the ones the trace
// tools produce.
type (
	// Packet is one CSI report from an AP (CSI matrix + RSSI + metadata).
	Packet = csi.Packet
	// CalibrationOffsets are per-antenna phase corrections for one AP.
	CalibrationOffsets = calib.Offsets
	// CSIMatrix is the per-antenna per-subcarrier channel matrix.
	CSIMatrix = csi.Matrix
	// PathEstimate is one super-resolution (AoA, ToF) estimate.
	PathEstimate = music.PathEstimate
	// Candidate is a clustered direct-path hypothesis with likelihood.
	Candidate = dpath.Candidate
	// Band is the OFDM measurement grid.
	Band = rf.Band
	// Array is the AP antenna array geometry.
	Array = rf.Array
	// PathLoss is the log-distance RSSI model.
	PathLoss = rf.PathLoss
	// Point is a 2-D location in meters.
	Point = geom.Point
	// Bounds is the rectangular localization search region.
	Bounds = locate.Bounds
)

// AP describes a deployed access point: its position and the direction its
// antenna-array broadside faces. SpotFi assumes AP locations are known
// from one-time measurements (paper Sec. 3).
type AP struct {
	ID          int
	Pos         Point
	NormalAngle float64
}

// EstimatorKind selects the stage-1 super-resolution algorithm.
type EstimatorKind int

// Estimator kinds.
const (
	// EstimatorMUSIC is the paper's 2-D grid MUSIC (default).
	EstimatorMUSIC EstimatorKind = iota
	// EstimatorJADE is the search-free shift-invariance joint estimator —
	// ~100× faster per packet, slightly less robust in deep multipath.
	EstimatorJADE
)

func (k EstimatorKind) String() string {
	switch k {
	case EstimatorMUSIC:
		return "music"
	case EstimatorJADE:
		return "jade"
	default:
		return "unknown"
	}
}

// SelectionScheme picks the direct path among clustered candidates.
type SelectionScheme int

// Selection schemes (paper Sec. 4.4.2).
const (
	// SelectLikelihood is SpotFi's Eq. 8 maximum-likelihood selection.
	SelectLikelihood SelectionScheme = iota
	// SelectMinToF is the LTEye rule: smallest mean ToF.
	SelectMinToF
	// SelectMaxPower is the CUPID rule: strongest MUSIC spectrum peak.
	SelectMaxPower
)

func (s SelectionScheme) String() string {
	switch s {
	case SelectLikelihood:
		return "spotfi"
	case SelectMinToF:
		return "min-tof"
	case SelectMaxPower:
		return "max-power"
	default:
		return "unknown"
	}
}

// Config configures a Localizer.
type Config struct {
	// Music configures the super-resolution estimator.
	Music music.Params
	// DPath configures clustering and the Eq. 8 likelihood.
	DPath dpath.Config
	// Locate configures the Eq. 9 solver.
	Locate locate.Config
	// Selection picks the direct-path rule (default SpotFi likelihood).
	Selection SelectionScheme
	// Estimator picks the stage-1 algorithm (default grid MUSIC).
	Estimator EstimatorKind
	// Sanitize toggles Algorithm 1 (default on; off only for ablation).
	Sanitize bool
	// Workers bounds pipeline parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed makes clustering deterministic.
	Seed int64
	// Calibration holds per-AP antenna phase corrections (from
	// calib.Estimate against a known-position beacon), applied to every
	// packet before estimation. APs without an entry are used as-is.
	Calibration map[int]calib.Offsets
}

// DefaultConfig returns the paper's configuration over search bounds b.
func DefaultConfig(b Bounds) Config {
	cfg := Config{
		Music:     music.DefaultParams(),
		DPath:     dpath.DefaultConfig(),
		Locate:    locate.DefaultConfig(b),
		Selection: SelectLikelihood,
		Sanitize:  true,
		Seed:      1,
	}
	// The paper clusters into 5 groups ("at best five significant paths");
	// indoor environments with 6–8 resolvable paths benefit from a couple
	// of extra clusters so distinct paths are not merged — see the
	// cluster-count ablation bench.
	cfg.DPath.Cluster.K = 7
	return cfg
}

// APReport is the per-AP output of stages 1–2: the selected direct path
// plus everything needed to audit the decision.
type APReport struct {
	APID int
	// AoA is the selected direct-path AoA (radians, relative to the AP
	// array normal).
	AoA float64
	// Likelihood is the Eq. 8 value of the selected candidate.
	Likelihood float64
	// MeanRSSIdBm is the burst-averaged RSSI.
	MeanRSSIdBm float64
	// Candidates are all clustered hypotheses, sorted by likelihood.
	Candidates []Candidate
	// PerPacket holds the raw super-resolution estimates per packet.
	PerPacket [][]PathEstimate
	// Packets is how many packets contributed.
	Packets int
}

// Localizer runs the SpotFi pipeline.
type Localizer struct {
	cfg  Config
	est  *music.Estimator
	jade *music.JADE
	aps  map[int]AP
}

// New builds a Localizer for the given APs.
func New(cfg Config, aps []AP) (*Localizer, error) {
	est, err := music.NewEstimator(cfg.Music)
	if err != nil {
		return nil, err
	}
	var jade *music.JADE
	if cfg.Estimator == EstimatorJADE {
		jade, err = music.NewJADE(cfg.Music)
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.Locate.Validate(); err != nil {
		return nil, err
	}
	if len(aps) == 0 {
		return nil, fmt.Errorf("spotfi: no APs registered")
	}
	m := make(map[int]AP, len(aps))
	for _, ap := range aps {
		if _, dup := m[ap.ID]; dup {
			return nil, fmt.Errorf("spotfi: duplicate AP ID %d", ap.ID)
		}
		m[ap.ID] = ap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Localizer{cfg: cfg, est: est, jade: jade, aps: m}, nil
}

// APs returns the registered access points.
func (l *Localizer) APs() []AP {
	out := make([]AP, 0, len(l.aps))
	for _, ap := range l.aps {
		out = append(out, ap)
	}
	return out
}

// ProcessBurst runs stages 1–2 on a burst of packets received by one AP
// from one target: sanitization, per-packet super-resolution (in
// parallel), clustering, and direct-path selection.
func (l *Localizer) ProcessBurst(apID int, pkts []*Packet) (*APReport, error) {
	if _, ok := l.aps[apID]; !ok {
		return nil, fmt.Errorf("spotfi: unknown AP %d", apID)
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("spotfi: empty burst for AP %d", apID)
	}

	perPacket := make([][]PathEstimate, len(pkts))
	errs := make([]error, len(pkts))
	var rssiSum float64
	for _, p := range pkts {
		rssiSum += p.RSSIdBm
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, l.cfg.Workers)
	for i, p := range pkts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Packet) {
			defer wg.Done()
			defer func() { <-sem }()
			work := p.CSI.Clone()
			if off, ok := l.cfg.Calibration[apID]; ok {
				if err := calib.Apply(work, off); err != nil {
					errs[i] = err
					return
				}
			}
			if l.cfg.Sanitize {
				if _, err := sanitize.ToF(work, l.cfg.Music.Band.SubcarrierSpacingHz); err != nil {
					errs[i] = err
					return
				}
			}
			var est []PathEstimate
			var err error
			if l.jade != nil {
				est, err = l.jade.EstimatePaths(work)
			} else {
				est, err = l.est.EstimatePaths(work)
			}
			if err != nil {
				errs[i] = err
				return
			}
			perPacket[i] = est
		}(i, p)
	}
	wg.Wait()
	var failed int
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == len(pkts) {
		return nil, fmt.Errorf("spotfi: every packet in the burst failed estimation: %v", firstError(errs))
	}

	// Clustering seed derived from the burst identity, not from a shared
	// RNG: concurrent ProcessBurst calls would otherwise consume the
	// generator in scheduler order and make results run-dependent.
	seed := int64(uint64(l.cfg.Seed)^uint64(apID+1)*0x9E3779B97F4A7C15^(pkts[0].Seq+1)*0xBF58476D1CE4E5B9^uint64(len(pkts))) & 0x7FFFFFFFFFFFFFFF
	res, err := dpath.Identify(perPacket, l.cfg.DPath, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}

	var cand Candidate
	var ok bool
	switch l.cfg.Selection {
	case SelectMinToF:
		cand, ok = res.MinToF()
	case SelectMaxPower:
		cand, ok = res.MaxPower()
	default:
		cand, ok = res.Best()
	}
	if !ok {
		return nil, fmt.Errorf("spotfi: no direct-path candidate for AP %d", apID)
	}
	return &APReport{
		APID:        apID,
		AoA:         cand.AoA,
		Likelihood:  cand.Likelihood,
		MeanRSSIdBm: rssiSum / float64(len(pkts)),
		Candidates:  res.Candidates,
		PerPacket:   perPacket,
		Packets:     len(pkts),
	}, nil
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Locate fuses per-AP reports into a location estimate (stage 3, Eq. 9).
func (l *Localizer) Locate(reports []*APReport) (Point, error) {
	obs := make([]locate.APObservation, 0, len(reports))
	for _, r := range reports {
		ap, ok := l.aps[r.APID]
		if !ok {
			return Point{}, fmt.Errorf("spotfi: report from unknown AP %d", r.APID)
		}
		obs = append(obs, locate.APObservation{
			Pos:         ap.Pos,
			NormalAngle: ap.NormalAngle,
			AoA:         r.AoA,
			RSSIdBm:     r.MeanRSSIdBm,
			Likelihood:  r.Likelihood,
		})
	}
	res, err := locate.Locate(obs, l.cfg.Locate)
	if err != nil {
		return Point{}, err
	}
	return res.Location, nil
}

// LocalizeBursts runs the full pipeline: one burst per AP, keyed by AP ID.
// APs whose burst fails stage 1–2 are skipped; at least two must survive.
func (l *Localizer) LocalizeBursts(bursts map[int][]*Packet) (Point, []*APReport, error) {
	ids := make([]int, 0, len(bursts))
	for id := range bursts {
		ids = append(ids, id)
	}
	sortInts(ids)
	var reports []*APReport
	for _, id := range ids {
		rep, err := l.ProcessBurst(id, bursts[id])
		if err != nil {
			continue // a dead AP must not kill localization
		}
		reports = append(reports, rep)
	}
	if len(reports) < 2 {
		return Point{}, nil, fmt.Errorf("spotfi: only %d usable AP reports", len(reports))
	}
	p, err := l.Locate(reports)
	return p, reports, err
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// GroundTruthAoA returns the AoA that AP would observe for a target at p —
// the quantity evaluation compares estimates against.
func GroundTruthAoA(ap AP, p Point) float64 {
	return math.Asin(math.Sin(geom.NormalizeAngle(p.Sub(ap.Pos).Angle() - ap.NormalAngle)))
}
