// Package spotfi is a from-scratch Go implementation of SpotFi
// ("SpotFi: Decimeter Level Localization Using WiFi", Kotaru, Joshi,
// Bharadia, Katti — SIGCOMM 2015): decimeter-level indoor localization on
// commodity 3-antenna WiFi APs using only CSI and RSSI.
//
// The pipeline has three stages, mirroring the paper:
//
//  1. Super-resolution estimation — each packet's 3×30 CSI matrix is
//     sanitized (Algorithm 1) and expanded into the smoothed CSI matrix of
//     Fig. 4, on which 2-D MUSIC jointly resolves the (AoA, ToF) of every
//     multipath component (Sec. 3.1).
//  2. Direct-path identification — per-packet estimates are clustered in
//     the (AoA, ToF) plane and each cluster is scored with the likelihood
//     metric of Eq. 8 (Sec. 3.2).
//  3. Localization — direct-path AoAs, likelihoods, and RSSI from all APs
//     are fused by minimizing the weighted least-squares objective of
//     Eq. 9 (Sec. 3.3).
//
// The Localizer type runs the whole pipeline; the stages are also exposed
// individually for applications that only need AoA estimation or
// direct-path identification.
package spotfi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"spotfi/internal/calib"
	"spotfi/internal/csi"
	"spotfi/internal/dpath"
	"spotfi/internal/geom"
	"spotfi/internal/locate"
	"spotfi/internal/music"
	"spotfi/internal/obs"
	"spotfi/internal/obs/quality"
	"spotfi/internal/obs/trace"
	"spotfi/internal/rf"
	"spotfi/internal/sanitize"
)

// Re-exported building blocks of the public API. These are aliases so the
// values returned by the pipeline interoperate with the ones the trace
// tools produce.
type (
	// Packet is one CSI report from an AP (CSI matrix + RSSI + metadata).
	Packet = csi.Packet
	// CalibrationOffsets are per-antenna phase corrections for one AP.
	CalibrationOffsets = calib.Offsets
	// CSIMatrix is the per-antenna per-subcarrier channel matrix.
	CSIMatrix = csi.Matrix
	// PathEstimate is one super-resolution (AoA, ToF) estimate.
	PathEstimate = music.PathEstimate
	// Candidate is a clustered direct-path hypothesis with likelihood.
	Candidate = dpath.Candidate
	// Band is the OFDM measurement grid.
	Band = rf.Band
	// Array is the AP antenna array geometry.
	Array = rf.Array
	// PathLoss is the log-distance RSSI model.
	PathLoss = rf.PathLoss
	// Point is a 2-D location in meters.
	Point = geom.Point
	// Bounds is the rectangular localization search region.
	Bounds = locate.Bounds
)

// AP describes a deployed access point: its position and the direction its
// antenna-array broadside faces. SpotFi assumes AP locations are known
// from one-time measurements (paper Sec. 3).
type AP struct {
	ID          int
	Pos         Point
	NormalAngle float64
}

// EstimatorKind selects the stage-1 super-resolution algorithm.
type EstimatorKind int

// Estimator kinds.
const (
	// EstimatorMUSIC is the paper's 2-D grid MUSIC (default).
	EstimatorMUSIC EstimatorKind = iota
	// EstimatorJADE is the search-free shift-invariance joint estimator —
	// ~100× faster per packet, slightly less robust in deep multipath.
	EstimatorJADE
)

func (k EstimatorKind) String() string {
	switch k {
	case EstimatorMUSIC:
		return "music"
	case EstimatorJADE:
		return "jade"
	default:
		return "unknown"
	}
}

// SelectionScheme picks the direct path among clustered candidates.
type SelectionScheme int

// Selection schemes (paper Sec. 4.4.2).
const (
	// SelectLikelihood is SpotFi's Eq. 8 maximum-likelihood selection.
	SelectLikelihood SelectionScheme = iota
	// SelectMinToF is the LTEye rule: smallest mean ToF.
	SelectMinToF
	// SelectMaxPower is the CUPID rule: strongest MUSIC spectrum peak.
	SelectMaxPower
)

func (s SelectionScheme) String() string {
	switch s {
	case SelectLikelihood:
		return "spotfi"
	case SelectMinToF:
		return "min-tof"
	case SelectMaxPower:
		return "max-power"
	default:
		return "unknown"
	}
}

// Config configures a Localizer.
type Config struct {
	// Music configures the super-resolution estimator.
	Music music.Params
	// DPath configures clustering and the Eq. 8 likelihood.
	DPath dpath.Config
	// Locate configures the Eq. 9 solver.
	Locate locate.Config
	// Selection picks the direct-path rule (default SpotFi likelihood).
	Selection SelectionScheme
	// Estimator picks the stage-1 algorithm (default grid MUSIC).
	Estimator EstimatorKind
	// Sanitize toggles Algorithm 1 (default on; off only for ablation).
	Sanitize bool
	// Workers bounds pipeline parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed makes clustering deterministic.
	Seed int64
	// Calibration holds per-AP antenna phase corrections (from
	// calib.Estimate against a known-position beacon), applied to every
	// packet before estimation. APs without an entry are used as-is.
	Calibration map[int]calib.Offsets
	// Metrics, when non-nil, receives per-stage timings and failure
	// counts for every burst processed (see NewPipelineMetrics).
	Metrics *PipelineMetrics
	// Quality holds the confidence-score scales and weights; the zero
	// value selects quality.DefaultScoreConfig. Every Location carries a
	// score regardless — this only tunes it.
	Quality quality.ScoreConfig
	// QualityMonitor, when non-nil, receives every burst's quality score:
	// it feeds the spotfi_quality_* metrics, the per-AP drift detector,
	// and the /debug/quality scoreboard (see quality.NewMonitor). Nil
	// records nothing.
	QualityMonitor *quality.Monitor
	// FastPath gates the ESPRIT-first estimation fast path (MUSIC
	// estimator only). Disabled by default.
	FastPath FastPathConfig
	// ModeLabel names this Localizer's rung on the server's degradation
	// ladder (e.g. "full", "fastpath", "coarse"). When non-empty it is
	// stamped on every Location.Mode and on the burst trace root, so each
	// fix records the fidelity it was computed at. Empty leaves both
	// unset.
	ModeLabel string
}

// FastPathConfig configures the ESPRIT-first fast path: the burst is first
// run through the search-free ESPRIT AoA estimator (~100× cheaper than the
// 2-D MUSIC sweep) and its result is accepted only when the burst looks
// easy on both of the pipeline's confidence components — the signal/noise
// eigen-subspace gap and the Eq. 8 likelihood margin. Any burst failing
// either gate is re-estimated with full MUSIC, so the fast path trades no
// accuracy in the hard cases it cannot judge.
type FastPathConfig struct {
	// Enabled turns the fast path on.
	Enabled bool
	// MinEigenGapDB is the minimum burst-mean signal/noise eigenvalue gap
	// (dB) for the ESPRIT result to be trusted; 0 means the default 10.
	MinEigenGapDB float64
	// MinMargin is the minimum Eq. 8 top-two likelihood margin ∈ [0,1];
	// 0 means the default 0.5.
	MinMargin float64
}

const (
	defaultFastPathMinEigenGapDB = 10
	defaultFastPathMinMargin     = 0.5
)

// PipelineMetrics instruments the Localizer: per-stage latency histograms
// and failure counters. Construct with NewPipelineMetrics to register the
// canonical metric names on a registry; a zero PipelineMetrics (or any nil
// field) records nothing.
type PipelineMetrics struct {
	// SanitizeSeconds, EstimateSeconds, ClusterSeconds, and LocateSeconds
	// time the pipeline stages: Algorithm 1 ToF sanitization and
	// super-resolution are observed once per packet, clustering once per
	// burst, localization once per fused fix.
	SanitizeSeconds *obs.Histogram
	EstimateSeconds *obs.Histogram
	ClusterSeconds  *obs.Histogram
	LocateSeconds   *obs.Histogram
	// PacketsProcessed counts packets that survived stage 1;
	// PacketFailures counts packets dropped by calibration, sanitization,
	// or estimation errors.
	PacketsProcessed *obs.Counter
	PacketFailures   *obs.Counter
	// BurstsProcessed and BurstFailures count ProcessBurst outcomes.
	BurstsProcessed *obs.Counter
	BurstFailures   *obs.Counter
	// APsSkipped counts per-AP bursts LocalizeBursts had to discard.
	APsSkipped *obs.Counter
	// FastPathAccepted counts bursts resolved by the ESPRIT fast path;
	// FastPathFallbacks counts bursts that tried it but were re-estimated
	// with full MUSIC because a confidence gate failed.
	FastPathAccepted  *obs.Counter
	FastPathFallbacks *obs.Counter
}

// NewPipelineMetrics registers the pipeline's metric families on r and
// returns the wired instrument set. Exported series:
//
//	spotfi_stage_duration_seconds{stage="sanitize"|"estimate"|"cluster"|"locate"}
//	spotfi_packets_processed_total, spotfi_packet_failures_total
//	spotfi_bursts_processed_total, spotfi_burst_failures_total
//	spotfi_aps_skipped_total
//	spotfi_fastpath_accepted_total, spotfi_fastpath_fallback_total
//	spotfi_steering_cache_{hits,misses,entries} (process-wide gauges)
func NewPipelineMetrics(r *obs.Registry) *PipelineMetrics {
	stage := func(name string) *obs.Histogram {
		return r.Histogram("spotfi_stage_duration_seconds",
			"Latency of SpotFi pipeline stages (sanitize/estimate per packet, cluster per burst, locate per fix).",
			obs.LatencyBuckets, obs.Labels{"stage": name})
	}
	return &PipelineMetrics{
		SanitizeSeconds:  stage("sanitize"),
		EstimateSeconds:  stage("estimate"),
		ClusterSeconds:   stage("cluster"),
		LocateSeconds:    stage("locate"),
		PacketsProcessed: r.Counter("spotfi_packets_processed_total", "Packets that survived super-resolution estimation.", nil),
		PacketFailures:   r.Counter("spotfi_packet_failures_total", "Packets dropped by calibration, sanitization, or estimation errors.", nil),
		BurstsProcessed:  r.Counter("spotfi_bursts_processed_total", "Per-AP bursts that produced a direct-path report.", nil),
		BurstFailures:    r.Counter("spotfi_burst_failures_total", "Per-AP bursts that failed stages 1-2.", nil),
		APsSkipped:       r.Counter("spotfi_aps_skipped_total", "APs excluded from localization because their burst failed.", nil),
		FastPathAccepted: r.Counter("spotfi_fastpath_accepted_total", "Bursts resolved by the ESPRIT fast path.", nil),
		FastPathFallbacks: r.Counter("spotfi_fastpath_fallback_total",
			"Bursts that tried the ESPRIT fast path but fell back to full MUSIC.", nil),
	}
}

// RegisterSteeringCacheMetrics exports the process-wide MUSIC steering-table
// cache counters on r as gauges. Separate from NewPipelineMetrics because
// the cache is shared by every Localizer in the process, so it should be
// registered once per registry, not once per pipeline.
func RegisterSteeringCacheMetrics(r *obs.Registry) {
	r.GaugeFunc("spotfi_steering_cache_hits", "Steering-table cache hits since process start.", nil,
		func() float64 { h, _, _ := music.SteeringCacheStats(); return float64(h) })
	r.GaugeFunc("spotfi_steering_cache_misses", "Steering-table cache misses (tables built) since process start.", nil,
		func() float64 { _, m, _ := music.SteeringCacheStats(); return float64(m) })
	r.GaugeFunc("spotfi_steering_cache_entries", "Steering tables currently cached.", nil,
		func() float64 { _, _, e := music.SteeringCacheStats(); return float64(e) })
}

// DefaultConfig returns the paper's configuration over search bounds b.
func DefaultConfig(b Bounds) Config {
	cfg := Config{
		Music:     music.DefaultParams(),
		DPath:     dpath.DefaultConfig(),
		Locate:    locate.DefaultConfig(b),
		Selection: SelectLikelihood,
		Sanitize:  true,
		Seed:      1,
	}
	// The paper clusters into 5 groups ("at best five significant paths");
	// indoor environments with 6–8 resolvable paths benefit from a couple
	// of extra clusters so distinct paths are not merged — see the
	// cluster-count ablation bench.
	cfg.DPath.Cluster.K = 7
	return cfg
}

// APReport is the per-AP output of stages 1–2: the selected direct path
// plus everything needed to audit the decision.
type APReport struct {
	APID int
	// AoA is the selected direct-path AoA (radians, relative to the AP
	// array normal).
	AoA float64
	// Likelihood is the Eq. 8 value of the selected candidate.
	Likelihood float64
	// MeanRSSIdBm is the burst-averaged RSSI.
	MeanRSSIdBm float64
	// Candidates are all clustered hypotheses, sorted by likelihood.
	Candidates []Candidate
	// PerPacket holds the raw super-resolution estimates per packet.
	PerPacket [][]PathEstimate
	// Packets is how many packets contributed.
	Packets int
	// Margin is the top-two Eq. 8 likelihood margin 1 − l₂/l₁ ∈ [0,1]:
	// how decisively the selected cluster beat the runner-up.
	Margin float64
	// EigenGapDB is the burst-mean signal/noise eigen-subspace gap (dB)
	// across the packets that survived estimation.
	EigenGapDB float64
	// STOMeanNs and STOJitterNs are the burst mean and packet-to-packet
	// standard deviation of the Algorithm 1 sanitization slope, in
	// nanoseconds. NaN when sanitization is disabled.
	STOMeanNs, STOJitterNs float64
}

// Localizer runs the SpotFi pipeline.
//
// A music.Estimator is single-goroutine (it owns eigendecomposition and
// sweep arenas), so the per-packet estimation goroutines draw estimators
// from a sync.Pool instead of sharing one. Estimation is deterministic —
// an estimator carries no numerical state between calls — so which pooled
// estimator serves which packet cannot affect results.
type Localizer struct {
	cfg    Config
	pool   sync.Pool // of *music.Estimator, all built from cfg.Music
	esprit *music.ESPRIT
	jade   *music.JADE
	aps    map[int]AP
}

// New builds a Localizer for the given APs.
func New(cfg Config, aps []AP) (*Localizer, error) {
	// Build one estimator eagerly: it validates cfg.Music and constructs
	// (or finds cached) the shared steering table, so later pool misses
	// cannot fail.
	est, err := music.NewEstimator(cfg.Music)
	if err != nil {
		return nil, err
	}
	var jade *music.JADE
	if cfg.Estimator == EstimatorJADE {
		jade, err = music.NewJADE(cfg.Music)
		if err != nil {
			return nil, err
		}
	}
	var esprit *music.ESPRIT
	if cfg.FastPath.Enabled && jade == nil {
		if cfg.FastPath.MinEigenGapDB == 0 {
			cfg.FastPath.MinEigenGapDB = defaultFastPathMinEigenGapDB
		}
		if cfg.FastPath.MinMargin == 0 {
			cfg.FastPath.MinMargin = defaultFastPathMinMargin
		}
		maxPaths := cfg.Music.MaxPaths
		if lim := cfg.Music.Array.Antennas - 1; maxPaths > lim {
			maxPaths = lim
		}
		esprit, err = music.NewESPRIT(music.AoAParams{
			Band:            cfg.Music.Band,
			Array:           cfg.Music.Array,
			AoAGridRad:      math.Pi / 180, // unused by ESPRIT; must validate
			EigenThreshold:  cfg.Music.EigenThreshold,
			MaxPaths:        maxPaths,
			ForwardBackward: true,
		})
		if err != nil {
			return nil, fmt.Errorf("spotfi: fast path: %w", err)
		}
	}
	if err := cfg.Locate.Validate(); err != nil {
		return nil, err
	}
	if len(aps) == 0 {
		return nil, fmt.Errorf("spotfi: no APs registered")
	}
	m := make(map[int]AP, len(aps))
	for _, ap := range aps {
		if _, dup := m[ap.ID]; dup {
			return nil, fmt.Errorf("spotfi: duplicate AP ID %d", ap.ID)
		}
		m[ap.ID] = ap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		// Nil obs metrics are no-ops, so an unwired pipeline pays only
		// the time.Now calls.
		cfg.Metrics = &PipelineMetrics{}
	}
	l := &Localizer{cfg: cfg, esprit: esprit, jade: jade, aps: m}
	l.pool.New = func() any {
		e, err := music.NewEstimator(l.cfg.Music)
		if err != nil {
			return nil // unreachable: cfg.Music validated above
		}
		return e
	}
	l.pool.Put(est)
	return l, nil
}

// APs returns the registered access points.
func (l *Localizer) APs() []AP {
	out := make([]AP, 0, len(l.aps))
	for _, ap := range l.aps {
		out = append(out, ap)
	}
	return out
}

// estimateMUSIC draws a pooled estimator, runs one packet through it,
// and returns the estimator with a defer — so a panicking estimate
// (poisoned input tripping an internal invariant) does not silently
// drain the pool and degrade every later burst to cold construction.
func (l *Localizer) estimateMUSIC(work *CSIMatrix) ([]PathEstimate, music.Diag, error) {
	me, _ := l.pool.Get().(*music.Estimator)
	if me == nil {
		return nil, music.Diag{}, fmt.Errorf("spotfi: estimator pool exhausted")
	}
	defer l.pool.Put(me)
	return me.EstimatePathsDiag(work)
}

// ProcessBurst runs stages 1–2 on a burst of packets received by one AP
// from one target: sanitization, per-packet super-resolution (in
// parallel), clustering, and direct-path selection.
func (l *Localizer) ProcessBurst(apID int, pkts []*Packet) (*APReport, error) {
	return l.ProcessBurstTraced(apID, pkts, nil)
}

// ProcessBurstTraced is ProcessBurst recording stage spans and DSP
// attributes under parent. A nil parent (tracing disabled or the burst
// sampled out) adds no allocations to the hot path.
//
// The burst runs in three stages: prep (clone, calibrate, sanitize — once,
// shared by every estimation attempt), estimate (per-packet
// super-resolution in parallel), and cluster/select. When the ESPRIT fast
// path is enabled, the estimate+cluster stages first run with ESPRIT and
// the result is kept only if it clears the FastPathConfig confidence
// gates; otherwise the same prepped packets are re-estimated with MUSIC.
func (l *Localizer) ProcessBurstTraced(apID int, pkts []*Packet, parent *trace.Span) (*APReport, error) {
	if _, ok := l.aps[apID]; !ok {
		return nil, fmt.Errorf("spotfi: unknown AP %d", apID)
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("spotfi: empty burst for AP %d", apID)
	}
	apSpan := parent.StartSpan(trace.StageAP)
	defer apSpan.End()
	apSpan.SetInt("ap", int64(apID))
	apSpan.SetInt("packets", int64(len(pkts)))

	var rssiSum float64
	for _, p := range pkts {
		rssiSum += p.RSSIdBm
	}

	works, prepErrs, stoNs := l.prepBurst(apID, pkts, apSpan)

	if l.esprit != nil {
		rep, err := l.estimateAndCluster(apID, pkts, works, prepErrs, stoNs, rssiSum, apSpan, estimatorESPRITKind)
		if err == nil && rep.EigenGapDB >= l.cfg.FastPath.MinEigenGapDB && rep.Margin >= l.cfg.FastPath.MinMargin {
			apSpan.SetStr("estimator", estimatorESPRITKind)
			apSpan.SetInt("fast_path", 1)
			l.cfg.Metrics.FastPathAccepted.Inc()
			l.cfg.Metrics.BurstsProcessed.Inc()
			return rep, nil
		}
		l.cfg.Metrics.FastPathFallbacks.Inc()
	}

	kind := EstimatorMUSIC.String()
	if l.jade != nil {
		kind = EstimatorJADE.String()
	}
	apSpan.SetStr("estimator", kind)
	rep, err := l.estimateAndCluster(apID, pkts, works, prepErrs, stoNs, rssiSum, apSpan, kind)
	if err != nil {
		l.cfg.Metrics.BurstFailures.Inc()
		return nil, err
	}
	l.cfg.Metrics.BurstsProcessed.Inc()
	return rep, nil
}

// estimatorESPRITKind labels the fast-path estimator in spans; the MUSIC
// and JADE labels come from EstimatorKind.String.
const estimatorESPRITKind = "esprit"

// prepBurst runs the per-packet preparation stage — clone, per-AP
// calibration, Algorithm 1 sanitization — in parallel. It returns the
// prepared CSI (nil where prep failed), the per-packet errors, and the
// sanitization slopes in ns (NaN where unavailable). The prepared matrices
// are estimator-independent, so a fast-path fallback reuses them instead
// of sanitizing twice.
func (l *Localizer) prepBurst(apID int, pkts []*Packet, apSpan *trace.Span) ([]*CSIMatrix, []error, []float64) {
	works := make([]*CSIMatrix, len(pkts))
	errs := make([]error, len(pkts))
	stoNs := make([]float64, len(pkts))
	for i := range stoNs {
		stoNs[i] = math.NaN()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, l.cfg.Workers)
	for i, p := range pkts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Packet) {
			defer wg.Done()
			defer func() { <-sem }()
			work := p.CSI.Clone()
			if off, ok := l.cfg.Calibration[apID]; ok {
				if err := calib.Apply(work, off); err != nil {
					errs[i] = err
					return
				}
			}
			if l.cfg.Sanitize {
				ssp := apSpan.StartSpan(trace.StageSanitize)
				start := time.Now()
				sres, err := sanitize.ToF(work, l.cfg.Music.Band.SubcarrierSpacingHz)
				l.cfg.Metrics.SanitizeSeconds.ObserveSince(start)
				ssp.SetInt("pkt", int64(i))
				ssp.SetFloat("sto_ns", sres.STOEstimate*1e9)
				ssp.End()
				if err != nil {
					errs[i] = err
					return
				}
				stoNs[i] = sres.STOEstimate * 1e9
			}
			works[i] = work
		}(i, p)
	}
	wg.Wait()
	return works, errs, stoNs
}

// estimateAndCluster runs stages 1–2 over already-prepped packets with the
// named estimator and assembles the APReport. It increments the per-packet
// counters (each estimation pass is real work) but leaves the burst
// counters to the caller, which knows whether this pass's result was kept.
func (l *Localizer) estimateAndCluster(apID int, pkts []*Packet, works []*CSIMatrix, prepErrs []error, stoNs []float64, rssiSum float64, apSpan *trace.Span, kind string) (*APReport, error) {
	perPacket := make([][]PathEstimate, len(pkts))
	errs := make([]error, len(pkts))
	copy(errs, prepErrs)
	// Per-packet eigen gap, NaN until estimation ran: the burst mean feeds
	// the quality scorer, the per-AP drift baselines, and the fast-path
	// gate.
	gapDB := make([]float64, len(pkts))
	for i := range gapDB {
		gapDB[i] = math.NaN()
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, l.cfg.Workers)
	for i := range pkts {
		if errs[i] != nil || works[i] == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, work *CSIMatrix) {
			defer wg.Done()
			defer func() { <-sem }()
			esp := apSpan.StartSpan(trace.StageEstimate)
			start := time.Now()
			var est []PathEstimate
			var diag music.Diag
			var err error
			switch kind {
			case estimatorESPRITKind:
				est, diag, err = l.esprit.EstimatePathsDiag(work)
			case "jade":
				est, diag, err = l.jade.EstimatePathsDiag(work)
			default:
				est, diag, err = l.estimateMUSIC(work)
			}
			l.cfg.Metrics.EstimateSeconds.ObserveSince(start)
			esp.SetInt("pkt", int64(i))
			esp.SetStr("estimator", kind)
			esp.SetInt("eigen_sweeps", int64(diag.EigenSweeps))
			esp.SetInt("signal_dim", int64(diag.SignalDim))
			esp.SetFloat("eigen_gap_db", diag.EigenGapDB)
			esp.SetInt("grid_theta", int64(diag.GridTheta))
			esp.SetInt("grid_tau", int64(diag.GridTau))
			esp.SetInt("peaks", int64(diag.Peaks))
			esp.SetInt("cells_swept", int64(diag.CellsSwept))
			if diag.DenseFallback {
				esp.SetInt("dense_fallback", 1)
			}
			esp.End()
			if err != nil {
				errs[i] = err
				return
			}
			perPacket[i] = est
			gapDB[i] = diag.EigenGapDB
		}(i, works[i])
	}
	wg.Wait()
	var failed int
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	l.cfg.Metrics.PacketFailures.Add(uint64(failed))
	l.cfg.Metrics.PacketsProcessed.Add(uint64(len(pkts) - failed))
	if failed == len(pkts) {
		return nil, fmt.Errorf("spotfi: every packet in the burst failed estimation: %v", firstError(errs))
	}

	// Clustering seed derived from the burst identity, not from a shared
	// RNG: concurrent ProcessBurst calls would otherwise consume the
	// generator in scheduler order and make results run-dependent.
	seed := int64(uint64(l.cfg.Seed)^uint64(apID+1)*0x9E3779B97F4A7C15^(pkts[0].Seq+1)*0xBF58476D1CE4E5B9^uint64(len(pkts))) & 0x7FFFFFFFFFFFFFFF
	csp := apSpan.StartSpan(trace.StageCluster)
	start := time.Now()
	res, err := dpath.Identify(perPacket, l.cfg.DPath, rand.New(rand.NewSource(seed)))
	l.cfg.Metrics.ClusterSeconds.ObserveSince(start)
	if err != nil {
		csp.End()
		return nil, err
	}
	csp.SetInt("clusters", int64(len(res.Candidates)))
	csp.End()

	sel := apSpan.StartSpan(trace.StageSelect)
	defer sel.End()
	if sel.Enabled() {
		// Per-cluster Eq. 8 likelihoods, in the candidates' sorted order.
		ls := make([]float64, len(res.Candidates))
		for i, c := range res.Candidates {
			ls[i] = c.Likelihood
		}
		sel.SetFloats("likelihoods", ls)
		sel.SetStr("scheme", l.cfg.Selection.String())
	}
	var cand Candidate
	var ok bool
	switch l.cfg.Selection {
	case SelectMinToF:
		cand, ok = res.MinToF()
	case SelectMaxPower:
		cand, ok = res.MaxPower()
	default:
		cand, ok = res.Best()
	}
	if !ok {
		return nil, fmt.Errorf("spotfi: no direct-path candidate for AP %d", apID)
	}
	sel.SetFloat("aoa_deg", cand.AoA*180/math.Pi)
	sel.SetFloat("tof_ns", cand.ToF*1e9)
	sel.SetFloat("likelihood", cand.Likelihood)
	stoMean, stoStd := meanStd(stoNs)
	gapMean, _ := meanStd(gapDB)
	return &APReport{
		APID:        apID,
		AoA:         cand.AoA,
		Likelihood:  cand.Likelihood,
		MeanRSSIdBm: rssiSum / float64(len(pkts)),
		Candidates:  res.Candidates,
		PerPacket:   perPacket,
		Packets:     len(pkts),
		Margin:      res.Margin(),
		EigenGapDB:  gapMean,
		STOMeanNs:   stoMean,
		STOJitterNs: stoStd,
	}, nil
}

// meanStd returns the mean and population standard deviation of the finite
// entries of xs (NaN, NaN when none are finite — e.g. sanitize disabled).
func meanStd(xs []float64) (mean, std float64) {
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		mean += x
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean /= float64(n)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(n))
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Location is a localization fix: the fused position plus the quality
// metadata the pipeline derived while producing it. Point is embedded, so
// a Location is usable anywhere a position is expected. The struct is
// comparable.
type Location struct {
	Point
	// Confidence ∈ [0,1] scores how trustworthy this fix is, folding the
	// Eq. 8 likelihood margin, eigen-subspace gap, sanitization-slope
	// stability, cross-AP AoA agreement, Eq. 9 residual, and AP-geometry
	// coverage into one number (see internal/obs/quality).
	Confidence float64
	// Quality is the per-component breakdown of Confidence.
	Quality quality.Breakdown
	// Mode is the degradation-ladder label of the Localizer that produced
	// this fix (Config.ModeLabel; empty when unset) — under overload the
	// server steps down to cheaper estimators, and the fix says so.
	Mode string
}

// Locate fuses per-AP reports into a location estimate (stage 3, Eq. 9).
func (l *Localizer) Locate(reports []*APReport) (Point, error) {
	return l.LocateTraced(reports, nil)
}

// LocateTraced is Locate recording a solver span (iterations, objective,
// solution) under parent. A nil parent is free.
func (l *Localizer) LocateTraced(reports []*APReport, parent *trace.Span) (Point, error) {
	res, err := l.locateFull(reports, parent)
	return res.Location, err
}

// locateFull runs stage 3 and returns the full solver result (objective,
// iterations, per-observation AoA residuals) for quality scoring.
func (l *Localizer) locateFull(reports []*APReport, parent *trace.Span) (locate.Result, error) {
	obs := make([]locate.APObservation, 0, len(reports))
	for _, r := range reports {
		ap, ok := l.aps[r.APID]
		if !ok {
			return locate.Result{}, fmt.Errorf("spotfi: report from unknown AP %d", r.APID)
		}
		obs = append(obs, locate.APObservation{
			Pos:         ap.Pos,
			NormalAngle: ap.NormalAngle,
			AoA:         r.AoA,
			RSSIdBm:     r.MeanRSSIdBm,
			Likelihood:  r.Likelihood,
		})
	}
	lsp := parent.StartSpan(trace.StageLocate)
	defer lsp.End()
	lsp.SetInt("aps", int64(len(reports)))
	start := time.Now()
	res, err := locate.Locate(obs, l.cfg.Locate)
	l.cfg.Metrics.LocateSeconds.ObserveSince(start)
	if err != nil {
		return locate.Result{}, err
	}
	lsp.SetInt("iters", int64(res.Iters))
	lsp.SetFloat("objective", res.Objective)
	lsp.SetFloat("x", res.Location.X)
	lsp.SetFloat("y", res.Location.Y)
	return res, nil
}

// scoreBurst folds the per-AP reports and solver result of one fused burst
// into a quality score. Reports and res.AoAResid are index-aligned (both
// follow the order reports were passed to the solver).
func (l *Localizer) scoreBurst(reports []*APReport, res locate.Result) quality.Score {
	in := quality.BurstInputs{Iters: res.Iters, Objective: res.Objective}
	for i, r := range reports {
		resid := math.NaN()
		if i < len(res.AoAResid) {
			resid = res.AoAResid[i]
		}
		in.APs = append(in.APs, quality.APInputs{
			APID:        r.APID,
			Margin:      r.Margin,
			EigenGapDB:  r.EigenGapDB,
			STOMeanNs:   r.STOMeanNs,
			STOJitterNs: r.STOJitterNs,
			AoAResidRad: resid,
			Likelihood:  r.Likelihood,
			Packets:     r.Packets,
		})
	}
	return quality.ScoreBurst(in, l.cfg.Quality)
}

// SkippedAP records an AP whose burst failed stages 1–2 and was excluded
// from localization, with the cause.
type SkippedAP struct {
	APID int
	Err  error
}

func (s SkippedAP) String() string {
	return fmt.Sprintf("AP %d: %v", s.APID, s.Err)
}

// LocalizeBursts runs the full pipeline: one burst per AP, keyed by AP ID.
// APs whose burst fails stage 1–2 do not kill localization — they are
// excluded and reported in the skipped slice so callers can surface per-AP
// health instead of silently fusing fewer observations — but at least two
// must survive. When localization proceeds, skipped is non-nil exactly
// when at least one AP was dropped. The returned Location carries the
// burst's confidence score and its component breakdown.
func (l *Localizer) LocalizeBursts(bursts map[int][]*Packet) (Location, []*APReport, []SkippedAP, error) {
	return l.LocalizeBurstsTraced(bursts, nil)
}

// LocalizeBurstsTraced is LocalizeBursts recording the full pipeline span
// tree under tr's root. It does not Finish the trace — the caller that owns
// the burst lifecycle does. A nil tr (tracing disabled or the burst sampled
// out) adds no allocations.
func (l *Localizer) LocalizeBurstsTraced(bursts map[int][]*Packet, tr *trace.Trace) (Location, []*APReport, []SkippedAP, error) {
	root := tr.Root()
	ids := make([]int, 0, len(bursts))
	for id := range bursts {
		ids = append(ids, id)
	}
	sortInts(ids)
	var reports []*APReport
	var skipped []SkippedAP
	for _, id := range ids {
		rep, err := l.ProcessBurstTraced(id, bursts[id], root)
		if err != nil {
			skipped = append(skipped, SkippedAP{APID: id, Err: err})
			l.cfg.Metrics.APsSkipped.Inc()
			continue
		}
		reports = append(reports, rep)
	}
	root.SetInt("aps_skipped", int64(len(skipped)))
	if len(reports) < 2 {
		return Location{}, nil, skipped, fmt.Errorf("spotfi: only %d usable AP reports (%d skipped: %v)",
			len(reports), len(skipped), skipped)
	}
	res, err := l.locateFull(reports, root)
	if err != nil {
		return Location{}, reports, skipped, err
	}
	sc := l.scoreBurst(reports, res)
	root.SetFloat("confidence", sc.Overall)
	if l.cfg.ModeLabel != "" {
		root.SetStr("mode", l.cfg.ModeLabel)
	}
	l.cfg.QualityMonitor.Observe(sc)
	return Location{
		Point:      res.Location,
		Confidence: sc.Overall,
		Quality:    sc.Breakdown,
		Mode:       l.cfg.ModeLabel,
	}, reports, skipped, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// GroundTruthAoA returns the AoA that AP would observe for a target at p —
// the quantity evaluation compares estimates against.
func GroundTruthAoA(ap AP, p Point) float64 {
	return math.Asin(math.Sin(geom.NormalizeAngle(p.Sub(ap.Pos).Angle() - ap.NormalAngle)))
}
