package spotfi

import "spotfi/internal/admit"

// BuildLadder constructs one Localizer per degradation rung, cheapest
// last, all sharing base's metrics and quality monitor. modes bounds how
// many rungs are built (1 full MUSIC only, 2 adds the ESPRIT fast path,
// 3 adds the coarse fallback grid). Each rung's ModeLabel is the
// admit.Mode name it serves, so fixes and traces say which rung produced
// them.
//
// This is the single source of rung construction: spotfi-server builds
// its serving ladder here, and flight-recorder replay rebuilds the same
// ladder from a bundle's recorded config — the two must agree or replay
// stops being bit-exact.
func BuildLadder(base Config, aps []AP, modes int) ([]*Localizer, error) {
	configs := []func(Config) Config{
		func(c Config) Config {
			c.ModeLabel = admit.ModeFull.String()
			return c
		},
		func(c Config) Config {
			c.ModeLabel = admit.ModeFastPath.String()
			c.FastPath.Enabled = true
			return c
		},
		func(c Config) Config {
			c.ModeLabel = admit.ModeCoarse.String()
			c.FastPath.Enabled = true
			// Halve the coarse-pass resolution of the MUSIC fallback on
			// top of the fast path: cheaper hard bursts, same refinement.
			c.Music.CoarseGridFactor *= 2
			return c
		},
	}
	if modes < 1 {
		modes = 1
	}
	if modes < len(configs) {
		configs = configs[:modes]
	}
	locs := make([]*Localizer, 0, len(configs))
	for _, mk := range configs {
		loc, err := New(mk(base), aps)
		if err != nil {
			return nil, err
		}
		locs = append(locs, loc)
	}
	return locs, nil
}
