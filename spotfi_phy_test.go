package spotfi

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/ofdm"
	"spotfi/internal/rf"
	"spotfi/internal/sanitize"
	"spotfi/internal/sim"
)

// TestPHYDerivedCSIThroughPipeline is the strongest substrate validation:
// CSI is produced end to end through the OFDM receiver chain (training
// symbol → time-domain multipath → packet detection → LTF channel
// estimation), so the sampling time offset is whatever the detector
// leaves, not an injected term. SpotFi's sanitization + joint estimation
// must still recover the direct path's AoA and the relative ToF between
// paths.
func TestPHYDerivedCSIThroughPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY chain is expensive")
	}
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	// Direct path plus one wall reflection with a ~30 ns excess delay.
	env := &sim.Environment{Walls: []sim.Wall{{
		Seg:           geom.Segment{A: geom.Point{X: -30, Y: 8}, B: geom.Point{X: 30, Y: 8}},
		LossDB:        14,
		ReflectLossDB: 4,
	}}}
	ap := sim.AP{ID: 0, Pos: geom.Point{X: 0, Y: 0}, NormalAngle: math.Pi / 4}
	target := geom.Point{X: 6, Y: 2}
	rng := rand.New(rand.NewSource(71))
	link := sim.NewLink(env, ap, target, sim.DefaultLinkConfig(), rng)
	direct, ok := link.DirectPath()
	if !ok {
		t.Fatal("no direct path")
	}
	var reflected sim.Path
	for _, p := range link.Paths {
		if p.Kind == sim.Reflected {
			reflected = p
		}
	}
	if reflected.ToF == 0 {
		t.Fatal("no reflected path")
	}
	trueGap := reflected.ToF - direct.ToF

	syn, err := sim.NewPHYSynthesizer(link, band, array, ofdm.Default40MHz(), rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	var aoaErrs, gapErrs []float64
	const packets = 6
	for i := 0; i < packets; i++ {
		pkt, err := syn.NextPacket("phy")
		if err != nil {
			t.Fatal(err)
		}
		work := pkt.CSI.Clone()
		if _, err := sanitize.ToF(work, band.SubcarrierSpacingHz); err != nil {
			t.Fatal(err)
		}
		paths, err := est.EstimatePaths(work)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) < 2 {
			continue
		}
		// Closest estimate to the true direct AoA.
		bestD, bestR := -1, -1
		for k, p := range paths {
			if bestD < 0 || math.Abs(p.AoA-direct.AoA) < math.Abs(paths[bestD].AoA-direct.AoA) {
				bestD = k
			}
			if bestR < 0 || math.Abs(p.AoA-reflected.AoA) < math.Abs(paths[bestR].AoA-reflected.AoA) {
				bestR = k
			}
		}
		if bestD == bestR {
			continue // paths not separated in this packet
		}
		aoaErrs = append(aoaErrs, math.Abs(paths[bestD].AoA-direct.AoA))
		gapErrs = append(gapErrs, math.Abs((paths[bestR].ToF-paths[bestD].ToF)-trueGap))
	}
	if len(aoaErrs) < packets/2 {
		t.Fatalf("only %d/%d packets resolved both paths", len(aoaErrs), packets)
	}
	medAoA := median(aoaErrs)
	medGap := median(gapErrs)
	t.Logf("PHY-derived: direct AoA error %.1f°, relative-ToF error %.1f ns (true gap %.1f ns)",
		geom.Deg(medAoA), medGap*1e9, trueGap*1e9)
	if geom.Deg(medAoA) > 4 {
		t.Fatalf("direct AoA error %.1f° through PHY chain", geom.Deg(medAoA))
	}
	// Two interacting peaks bias each other's ToF by a few ns at this
	// aperture (15 subcarriers × 1.25 MHz); the paper itself only uses
	// ToF ordinally. Require the gap to be recovered within 10 ns.
	if medGap > 10e-9 {
		t.Fatalf("relative ToF error %.1f ns through PHY chain", medGap*1e9)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
