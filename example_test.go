package spotfi_test

import (
	"fmt"
	"log"

	"spotfi"

	"spotfi/internal/testbed"
)

// ExampleLocalizer shows the full pipeline on simulated CSI: register the
// AP poses, feed one burst of packets per AP, read back the location.
func ExampleLocalizer() {
	deployment := testbed.Office(42)
	aps := make([]spotfi.AP, len(deployment.APs))
	for i, ap := range deployment.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(deployment.Bounds), aps)
	if err != nil {
		log.Fatal(err)
	}

	bursts := make(map[int][]*spotfi.Packet)
	for apIdx := range deployment.APs {
		burst, err := deployment.Burst(apIdx, 4, 10)
		if err != nil {
			continue
		}
		bursts[apIdx] = burst
	}
	estimate, reports, _, err := loc.LocalizeBursts(bursts)
	if err != nil {
		log.Fatal(err)
	}
	truth := deployment.Targets[4]
	fmt.Printf("APs used: %d\n", len(reports))
	fmt.Printf("error under half a meter: %v\n", estimate.Dist(truth) < 0.5)
	// Output:
	// APs used: 6
	// error under half a meter: true
}

// ExampleLocalizer_processBurst runs only stages 1–2: per-AP multipath
// estimation and direct-path identification.
func ExampleLocalizer_processBurst() {
	deployment := testbed.Office(42)
	aps := make([]spotfi.AP, len(deployment.APs))
	for i, ap := range deployment.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	loc, err := spotfi.New(spotfi.DefaultConfig(deployment.Bounds), aps)
	if err != nil {
		log.Fatal(err)
	}
	burst, err := deployment.Burst(0, 4, 10)
	if err != nil {
		log.Fatal(err)
	}
	report, err := loc.ProcessBurst(0, burst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packets processed: %d\n", report.Packets)
	fmt.Printf("have candidates: %v\n", len(report.Candidates) > 0)
	fmt.Printf("likelihood positive: %v\n", report.Likelihood > 0)
	// Output:
	// packets processed: 10
	// have candidates: true
	// likelihood positive: true
}
