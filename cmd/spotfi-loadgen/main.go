// Command spotfi-loadgen load-tests a live spotfi-server over the real
// wire protocol: it simulates N APs hearing M targets at known positions,
// offers bursts open-loop on a phase schedule (steady, ramp), and
// measures the server's fix throughput, packet→fix latency percentiles,
// shed rate, and live localization error against ground truth. Results
// are written as a schema-versioned LOAD_<runid>.json; -compare gates a
// run against a committed baseline and exits nonzero on regression.
//
// Usage:
//
//	spotfi-loadgen -print-server-flags        # flags to launch a matching server
//	spotfi-loadgen -server 127.0.0.1:7100 -debug http://127.0.0.1:7101 \
//	    -phases "warm:5s@10,ramp:10s@10..60,soak:10s@120"
//	spotfi-loadgen ... -compare LOAD_baseline.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spotfi/internal/cliutil"
	"spotfi/internal/geom"
	"spotfi/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	serverAddr := flag.String("server", "127.0.0.1:7100", "spotfi-server wire address the AP streams dial")
	debugURL := flag.String("debug", "http://127.0.0.1:7101", "spotfi-server debug base URL (/metrics, /debug/fixes, /debug/slo)")
	apCount := flag.Int("aps", 6, "synthetic APs on the perimeter")
	targets := flag.Int("targets", 24, "distinct target MACs cycled through")
	positions := flag.Int("positions", 12, "quantized ground-truth positions")
	apsPerTarget := flag.Int("aps-per-target", 4, "nearest APs that hear each position (≥ server -minaps)")
	batch := flag.Int("batch", 10, "packets per AP per burst (must match server -batch)")
	boundsFlag := flag.String("bounds", "0,0,16,10", "deployment region minX,minY,maxX,maxY")
	phasesFlag := flag.String("phases", "warm:5s@10,ramp:10s@10..60,soak:10s@120",
		"load schedule: name:duration@rate or name:duration@start..end, comma-separated (rates are bursts/sec)")
	seed := flag.Int64("seed", 1, "scene seed (pins AP/position placement and all CSI)")
	runID := flag.String("runid", "", "run identifier (default load-<unix time>)")
	out := flag.String("out", "", "report output path (default LOAD_<runid>.json)")
	compare := flag.String("compare", "", "baseline LOAD_*.json to gate against; regressions exit nonzero")
	settle := flag.Duration("settle", 2*time.Second, "post-schedule drain for in-flight fixes")
	sendBuffer := flag.Int("send-buffer", 128, "per-AP client send queue depth")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	printServerFlags := flag.Bool("print-server-flags", false, "print matching spotfi-server flags and exit")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("spotfi-loadgen", cliutil.ReadBuild())
		return nil
	}
	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	bounds, err := cliutil.ParseBounds(*boundsFlag)
	if err != nil {
		return fmt.Errorf("-bounds: %w", err)
	}
	scene, err := loadgen.NewScene(loadgen.SceneConfig{
		Seed:         *seed,
		APs:          *apCount,
		Targets:      *targets,
		Positions:    *positions,
		APsPerTarget: *apsPerTarget,
		Batch:        *batch,
		Bounds:       bounds,
	})
	if err != nil {
		return err
	}

	if *printServerFlags {
		// The server must know the same AP poses and assemble the same
		// burst shape the generator sends; echo the flags that line it up.
		// MinAPs is one below the APs actually offered per position: the
		// server's health breakers may quarantine an AP whose synthetic
		// geometry scores poorly, and with MinAPs == APsPerTarget a single
		// quarantined AP would wedge burst assembly for every position that
		// includes it. One AP of slack turns that into a degraded-accuracy
		// fix instead of a stall.
		minAPs := scene.Cfg.APsPerTarget - 1
		if minAPs < 2 {
			minAPs = 2
		}
		// Quality quarantine is tuned for real deployments, where a
		// persistently low-scoring AP means miscalibration. The synthetic
		// scene deliberately includes hard-multipath positions that score
		// poorly by design; at load-test rates those trip the breakers
		// within seconds and quarantine healthy APs, so the failure
		// threshold is pushed out of reach for capacity runs.
		parts := []string{
			fmt.Sprintf("-bounds %s", *boundsFlag),
			fmt.Sprintf("-batch %d", scene.Cfg.Batch),
			fmt.Sprintf("-minaps %d", minAPs),
			"-breaker-failures 1000000",
		}
		for _, ap := range scene.APs {
			parts = append(parts, fmt.Sprintf("-ap %d,%g,%g,%g", ap.ID, ap.Pos.X, ap.Pos.Y, geom.Deg(ap.NormalAngle)))
		}
		fmt.Println(strings.Join(parts, " "))
		return nil
	}

	phases, err := loadgen.ParsePhases(*phasesFlag)
	if err != nil {
		return err
	}
	if *runID == "" {
		*runID = fmt.Sprintf("load-%d", time.Now().Unix())
	}
	if *out == "" {
		*out = fmt.Sprintf("LOAD_%s.json", *runID)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	logger.Info("starting load run", "server", *serverAddr, "aps", len(scene.APs),
		"targets", scene.Cfg.Targets, "phases", loadgen.FormatPhases(phases))
	res, err := loadgen.Run(ctx, loadgen.RunConfig{
		ServerAddr: *serverAddr,
		DebugURL:   *debugURL,
		Scene:      scene,
		Phases:     phases,
		SendBuffer: *sendBuffer,
		Settle:     *settle,
		Logger:     logger,
	})
	if err != nil {
		return err
	}

	opts := loadgen.ReportOpts{
		Seed:         *seed,
		APs:          *apCount,
		Targets:      *targets,
		Positions:    *positions,
		APsPerTarget: *apsPerTarget,
		Batch:        *batch,
		Phases:       loadgen.FormatPhases(phases),
	}
	report := loadgen.NewReport(*runID, time.Now().UTC().Format(time.RFC3339), opts, res)
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	printSummary(report)
	fmt.Printf("report: %s\n", *out)
	if res.FeedErr != "" {
		logger.Warn("fix feed ended with error", "err", res.FeedErr)
	}
	if res.SendErrs > 0 {
		logger.Warn("AP streams lost mid-run", "count", res.SendErrs)
	}

	if *compare != "" {
		base, err := loadgen.LoadReport(*compare)
		if err != nil {
			return err
		}
		if violations := loadgen.CompareReports(base, report, loadgen.Tolerance{}); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "spotfi-loadgen: %d regression(s) vs %s:\n", len(violations), *compare)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  -", v)
			}
			return fmt.Errorf("baseline comparison failed")
		}
		fmt.Printf("baseline comparison passed (%s)\n", *compare)
	}
	return nil
}

// printSummary renders the per-phase table a human reads first; the JSON
// report carries the same numbers for machines.
func printSummary(r *loadgen.Report) {
	fmt.Printf("%-10s %8s %8s %8s %9s %9s %9s %7s %8s %8s\n",
		"phase", "offered", "fixes", "fix/s", "p50ms", "p95ms", "p99ms", "shed", "errMed", "errP90")
	for _, p := range r.Phases {
		fmt.Printf("%-10s %8d %8d %8.1f %9.1f %9.1f %9.1f %6.1f%% %7.2fm %7.2fm\n",
			p.Name, p.OfferedBursts, p.Fixes, p.FixRatePerSec,
			p.LatencyP50Ms, p.LatencyP95Ms, p.LatencyP99Ms,
			p.ShedRate*100, p.ErrMedianM, p.ErrP90M)
	}
}
