// Command spotfi-lint runs the repo's custom static analyzers — the DSP
// and concurrency invariants this codebase has been burned by (see
// DESIGN.md §Linting). Standalone:
//
//	go run ./cmd/spotfi-lint ./...
//
// or through cmd/go's vet driver, which shares vet's caching:
//
//	go build -o /tmp/spotfi-lint ./cmd/spotfi-lint
//	go vet -vettool=/tmp/spotfi-lint ./...
package main

import (
	"os"

	"spotfi/internal/analysis/multichecker"
	"spotfi/internal/analysis/suite"
)

func main() {
	os.Exit(multichecker.Main(suite.Analyzers()))
}
