// Command spotfi-trace generates and inspects CSI trace files in the SFT1
// format used by the AP agent and trace tools.
//
// Usage:
//
//	spotfi-trace gen      -out capture.sft -ap 0 -target 3 -count 100 [-seed 1]
//	spotfi-trace info     -in capture.sft
//	spotfi-trace paths    -in capture.sft [-limit 5]
//	spotfi-trace spectrum -in capture.sft -out spectrum.svg [-packet N]
//	spotfi-trace locate   -in multi-ap.sft -bounds 0,0,16,10 -ap 0,x,y,deg -ap 1,...
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"spotfi"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
	"spotfi/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "paths":
		err = runPaths(os.Args[2:])
	case "spectrum":
		err = runSpectrum(os.Args[2:])
	case "locate":
		err = runLocate(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spotfi-trace gen      -out FILE -ap N -target N -count N [-seed N]
  spotfi-trace info     -in FILE
  spotfi-trace paths    -in FILE [-limit N]
  spotfi-trace spectrum -in FILE -out FILE.svg [-packet N]
  spotfi-trace locate   -in FILE -bounds B -ap SPEC [-ap SPEC ...]`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "capture.sft", "output file")
	ap := fs.Int("ap", 0, "AP index in the office testbed")
	target := fs.Int("target", 0, "target index in the office testbed")
	count := fs.Int("count", 100, "packets to generate")
	seed := fs.Int64("seed", 1, "testbed seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := testbed.Office(*seed)
	if *ap < 0 || *ap >= len(d.APs) || *target < 0 || *target >= len(d.Targets) {
		return fmt.Errorf("ap/target index out of range")
	}
	link := d.Link(*ap, *target)
	syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
		rand.New(rand.NewSource(*seed*1_000_003+int64(*ap)*7919+int64(*target)+17)))
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csi.NewTraceWriter(f)
	for i := 0; i < *count; i++ {
		if err := w.WritePacket(syn.NextPacket(testbed.TargetMAC(*target))); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets for AP %d / target %d (truth %v, direct AoA %.1f°) to %s\n",
		*count, *ap, *target, d.Targets[*target], geom.Deg(d.GroundTruthAoA(*ap, *target)), *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	var n int
	macs := map[string]int{}
	aps := map[int]int{}
	var rssiSum float64
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n++
		macs[p.TargetMAC]++
		aps[p.APID]++
		rssiSum += p.RSSIdBm
	}
	if n == 0 {
		return fmt.Errorf("empty trace")
	}
	fmt.Printf("%d packets, %d targets, %d APs, mean RSSI %.1f dBm\n",
		n, len(macs), len(aps), rssiSum/float64(n))
	for mac, c := range macs {
		fmt.Printf("  target %s: %d packets\n", mac, c)
	}
	return nil
}

func runPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	limit := fs.Int("limit", 5, "packets to analyze")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		return err
	}
	params := est.Params()
	for i := 0; i < *limit; i++ {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		work := p.CSI.Clone()
		if _, err := sanitize.ToF(work, params.Band.SubcarrierSpacingHz); err != nil {
			return err
		}
		paths, err := est.EstimatePaths(work)
		if err != nil {
			return err
		}
		fmt.Printf("packet %d (rssi %.1f dBm): %d paths\n", p.Seq, p.RSSIdBm, len(paths))
		for _, pe := range paths {
			fmt.Printf("  aoa %6.1f°  tof %7.1f ns  power %.3g\n",
				geom.Deg(pe.AoA), pe.ToF*1e9, pe.Power)
		}
	}
	return nil
}

func runSpectrum(args []string) error {
	fs := flag.NewFlagSet("spectrum", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	out := fs.String("out", "spectrum.svg", "output SVG")
	packet := fs.Int("packet", 0, "packet index to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	var p *csi.Packet
	for i := 0; i <= *packet; i++ {
		p, err = r.ReadPacket()
		if err != nil {
			return fmt.Errorf("reading packet %d: %w", i, err)
		}
	}
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		return err
	}
	work := p.CSI.Clone()
	if _, err := sanitize.ToF(work, est.Params().Band.SubcarrierSpacingHz); err != nil {
		return err
	}
	spec, err := est.Spectrum(work)
	if err != nil {
		return err
	}
	// Heatmap rows = AoA, columns = ToF (ns).
	h := &viz.Heatmap{
		Title:    fmt.Sprintf("MUSIC pseudo-spectrum, packet %d", p.Seq),
		XLabel:   "ToF (ns)",
		YLabel:   "AoA (deg)",
		LogScale: true,
		Z:        spec.P,
	}
	for _, th := range spec.Thetas {
		h.Y = append(h.Y, geom.Deg(th))
	}
	for _, tau := range spec.Taus {
		h.X = append(h.X, tau*1e9)
	}
	svg, err := h.SVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d AoA x %d ToF cells)\n", *out, len(spec.Thetas), len(spec.Taus))
	return nil
}

// runLocate replays a multi-AP trace offline: packets are grouped per
// target and AP, then the full SpotFi pipeline localizes each target.
func runLocate(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	in := fs.String("in", "", "input trace containing packets from several APs")
	boundsStr := fs.String("bounds", "0,0,16,10", "search bounds minX,minY,maxX,maxY")
	var aps cliutil.APList
	fs.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(aps) < 2 {
		return fmt.Errorf("need at least two -ap flags")
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	// Group packets per target MAC, then per AP.
	perTarget := map[string]map[int][]*csi.Packet{}
	r := csi.NewTraceReader(f)
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		byAP, ok := perTarget[p.TargetMAC]
		if !ok {
			byAP = map[int][]*csi.Packet{}
			perTarget[p.TargetMAC] = byAP
		}
		byAP[p.APID] = append(byAP[p.APID], p)
	}
	if len(perTarget) == 0 {
		return fmt.Errorf("empty trace")
	}

	loc, err := spotfi.New(spotfi.DefaultConfig(bounds), aps)
	if err != nil {
		return err
	}
	macs := make([]string, 0, len(perTarget))
	for mac := range perTarget {
		macs = append(macs, mac)
	}
	sort.Strings(macs)
	for _, mac := range macs {
		pos, reports, skipped, err := loc.LocalizeBursts(perTarget[mac])
		if err != nil {
			fmt.Printf("target %s: %v\n", mac, err)
			continue
		}
		for _, s := range skipped {
			fmt.Printf("target %s: skipped %v\n", mac, s)
		}
		fmt.Printf("target %s at (%.2f, %.2f) m from %d APs\n", mac, pos.X, pos.Y, len(reports))
	}
	return nil
}
