// Command spotfi-trace generates and inspects CSI trace files in the SFT1
// format used by the AP agent and trace tools.
//
// It also operates on flight-recorder bundles (see internal/flight): a
// bundle's frames.sft is plain SFT1, so info/paths/spectrum/locate work on
// captured production traffic unchanged, and two subcommands consume the
// whole bundle. `replay` re-ingests every recorded fix through the real
// pipeline — collector, rung ladder, deterministic clock, 100% trace
// sampling — and gates on each fix reproducing bit-for-bit. `corpus`
// converts captured frames into go-fuzz seed files for wire.FuzzReadFrame,
// so real anomalous traffic hardens the frame decoder.
//
// Usage:
//
//	spotfi-trace gen      -out capture.sft -ap 0 -target 3 -count 100 [-seed 1]
//	spotfi-trace info     -in capture.sft
//	spotfi-trace paths    -in capture.sft [-limit 5]
//	spotfi-trace spectrum -in capture.sft -out spectrum.svg [-packet N]
//	spotfi-trace locate   -in multi-ap.sft -bounds 0,0,16,10 -ap 0,x,y,deg -ap 1,...
//	spotfi-trace replay   -bundle DIR [-min-fixes N] [-v]
//	spotfi-trace corpus   -bundle DIR -out DIR [-max N]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"spotfi"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/flight"
	"spotfi/internal/flight/replay"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
	"spotfi/internal/viz"
	"spotfi/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "paths":
		err = runPaths(os.Args[2:])
	case "spectrum":
		err = runSpectrum(os.Args[2:])
	case "locate":
		err = runLocate(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	case "corpus":
		err = runCorpus(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spotfi-trace gen      -out FILE -ap N -target N -count N [-seed N]
  spotfi-trace info     -in FILE
  spotfi-trace paths    -in FILE [-limit N]
  spotfi-trace spectrum -in FILE -out FILE.svg [-packet N]
  spotfi-trace locate   -in FILE -bounds B -ap SPEC [-ap SPEC ...]
  spotfi-trace replay   -bundle DIR [-min-fixes N] [-v]
  spotfi-trace corpus   -bundle DIR -out DIR [-max N]`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "capture.sft", "output file")
	ap := fs.Int("ap", 0, "AP index in the office testbed")
	target := fs.Int("target", 0, "target index in the office testbed")
	count := fs.Int("count", 100, "packets to generate")
	seed := fs.Int64("seed", 1, "testbed seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := testbed.Office(*seed)
	if *ap < 0 || *ap >= len(d.APs) || *target < 0 || *target >= len(d.Targets) {
		return fmt.Errorf("ap/target index out of range")
	}
	link := d.Link(*ap, *target)
	syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp,
		rand.New(rand.NewSource(*seed*1_000_003+int64(*ap)*7919+int64(*target)+17)))
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csi.NewTraceWriter(f)
	for i := 0; i < *count; i++ {
		if err := w.WritePacket(syn.NextPacket(testbed.TargetMAC(*target))); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets for AP %d / target %d (truth %v, direct AoA %.1f°) to %s\n",
		*count, *ap, *target, d.Targets[*target], geom.Deg(d.GroundTruthAoA(*ap, *target)), *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	var n int
	macs := map[string]int{}
	aps := map[int]int{}
	var rssiSum float64
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n++
		macs[p.TargetMAC]++
		aps[p.APID]++
		rssiSum += p.RSSIdBm
	}
	if n == 0 {
		return fmt.Errorf("empty trace")
	}
	fmt.Printf("%d packets, %d targets, %d APs, mean RSSI %.1f dBm\n",
		n, len(macs), len(aps), rssiSum/float64(n))
	for mac, c := range macs {
		fmt.Printf("  target %s: %d packets\n", mac, c)
	}
	return nil
}

func runPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	limit := fs.Int("limit", 5, "packets to analyze")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		return err
	}
	params := est.Params()
	for i := 0; i < *limit; i++ {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		work := p.CSI.Clone()
		if _, err := sanitize.ToF(work, params.Band.SubcarrierSpacingHz); err != nil {
			return err
		}
		paths, err := est.EstimatePaths(work)
		if err != nil {
			return err
		}
		fmt.Printf("packet %d (rssi %.1f dBm): %d paths\n", p.Seq, p.RSSIdBm, len(paths))
		for _, pe := range paths {
			fmt.Printf("  aoa %6.1f°  tof %7.1f ns  power %.3g\n",
				geom.Deg(pe.AoA), pe.ToF*1e9, pe.Power)
		}
	}
	return nil
}

func runSpectrum(args []string) error {
	fs := flag.NewFlagSet("spectrum", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	out := fs.String("out", "spectrum.svg", "output SVG")
	packet := fs.Int("packet", 0, "packet index to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csi.NewTraceReader(f)
	var p *csi.Packet
	for i := 0; i <= *packet; i++ {
		p, err = r.ReadPacket()
		if err != nil {
			return fmt.Errorf("reading packet %d: %w", i, err)
		}
	}
	est, err := music.NewEstimator(music.DefaultParams())
	if err != nil {
		return err
	}
	work := p.CSI.Clone()
	if _, err := sanitize.ToF(work, est.Params().Band.SubcarrierSpacingHz); err != nil {
		return err
	}
	spec, err := est.Spectrum(work)
	if err != nil {
		return err
	}
	// Heatmap rows = AoA, columns = ToF (ns).
	h := &viz.Heatmap{
		Title:    fmt.Sprintf("MUSIC pseudo-spectrum, packet %d", p.Seq),
		XLabel:   "ToF (ns)",
		YLabel:   "AoA (deg)",
		LogScale: true,
		Z:        spec.P,
	}
	for _, th := range spec.Thetas {
		h.Y = append(h.Y, geom.Deg(th))
	}
	for _, tau := range spec.Taus {
		h.X = append(h.X, tau*1e9)
	}
	svg, err := h.SVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d AoA x %d ToF cells)\n", *out, len(spec.Thetas), len(spec.Taus))
	return nil
}

// runLocate replays a multi-AP trace offline: packets are grouped per
// target and AP, then the full SpotFi pipeline localizes each target.
func runLocate(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	in := fs.String("in", "", "input trace containing packets from several APs")
	boundsStr := fs.String("bounds", "0,0,16,10", "search bounds minX,minY,maxX,maxY")
	var aps cliutil.APList
	fs.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(aps) < 2 {
		return fmt.Errorf("need at least two -ap flags")
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	// Group packets per target MAC, then per AP.
	perTarget := map[string]map[int][]*csi.Packet{}
	r := csi.NewTraceReader(f)
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		byAP, ok := perTarget[p.TargetMAC]
		if !ok {
			byAP = map[int][]*csi.Packet{}
			perTarget[p.TargetMAC] = byAP
		}
		byAP[p.APID] = append(byAP[p.APID], p)
	}
	if len(perTarget) == 0 {
		return fmt.Errorf("empty trace")
	}

	loc, err := spotfi.New(spotfi.DefaultConfig(bounds), aps)
	if err != nil {
		return err
	}
	macs := make([]string, 0, len(perTarget))
	for mac := range perTarget {
		macs = append(macs, mac)
	}
	sort.Strings(macs)
	for _, mac := range macs {
		pos, reports, skipped, err := loc.LocalizeBursts(perTarget[mac])
		if err != nil {
			fmt.Printf("target %s: %v\n", mac, err)
			continue
		}
		for _, s := range skipped {
			fmt.Printf("target %s: skipped %v\n", mac, s)
		}
		fmt.Printf("target %s at (%.2f, %.2f) m from %d APs\n", mac, pos.X, pos.Y, len(reports))
	}
	return nil
}

// runReplay re-runs a flight bundle's recorded fixes through the real
// pipeline and gates on bit-exact reproduction: any divergence — or fewer
// reproduced fixes than -min-fixes — is a non-zero exit, which is what CI
// hangs the replay-smoke gate on.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	bundle := fs.String("bundle", "", "flight bundle directory (contains manifest.json and frames.sft)")
	minFixes := fs.Int("min-fixes", 0, "fail unless at least this many fixes reproduce bit-for-bit")
	verbose := fs.Bool("v", false, "print one line per fix, not just divergences")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bundle == "" {
		return fmt.Errorf("replay: -bundle is required")
	}
	b, err := flight.LoadBundle(*bundle)
	if err != nil {
		return err
	}
	fmt.Printf("bundle %s: trigger=%s frames=%d fixes=%d journal=%d\n",
		*bundle, b.Manifest.Trigger, len(b.Packets), len(b.Manifest.Fixes), len(b.Manifest.Journal))

	res, err := replay.Run(b, replay.Options{})
	if err != nil {
		return err
	}
	for _, out := range res.Fixes {
		switch {
		case out.Skipped:
			fmt.Printf("  fix %3d %s mode=%-8s SKIP  %s\n", out.Index, out.MAC, out.Mode, out.Reason)
		case out.Match:
			if *verbose {
				fmt.Printf("  fix %3d %s mode=%-8s OK    (%.3f, %.3f) conf %.3f trace %s\n",
					out.Index, out.MAC, out.Mode, out.X, out.Y, out.Confidence, out.TraceID)
			}
		default:
			fmt.Printf("  fix %3d %s mode=%-8s DIVERGED  %s\n", out.Index, out.MAC, out.Mode, out.Reason)
		}
	}
	fmt.Printf("replayed %d fixes: %d reproduced bit-for-bit, %d diverged, %d skipped\n",
		len(res.Fixes), res.Reproduced, res.Diverged, res.Skipped)
	if res.Diverged > 0 {
		return fmt.Errorf("replay: %d fixes diverged from the recorded bits", res.Diverged)
	}
	if res.Reproduced < *minFixes {
		return fmt.Errorf("replay: only %d fixes reproduced, want ≥ %d", res.Reproduced, *minFixes)
	}
	return nil
}

// runCorpus converts a bundle's captured frames into `go test fuzz v1`
// seed files for wire.FuzzReadFrame: each seed is one encoded CSI-report
// frame as it would appear on the wire, named by content hash so re-runs
// are idempotent and seeds from different bundles never collide.
func runCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	bundle := fs.String("bundle", "", "flight bundle directory")
	out := fs.String("out", "", "fuzz corpus directory (e.g. internal/wire/testdata/fuzz/FuzzReadFrame)")
	max := fs.Int("max", 32, "cap on seed files written")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bundle == "" || *out == "" {
		return fmt.Errorf("corpus: -bundle and -out are required")
	}
	b, err := flight.LoadBundle(*bundle)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	written := 0
	for _, p := range b.Packets {
		if written >= *max {
			break
		}
		fr, err := wire.EncodeCSIReport(p)
		if err != nil {
			return fmt.Errorf("corpus: encoding packet ap=%d seq=%d: %w", p.APID, p.Seq, err)
		}
		var buf bytes.Buffer
		if err := wire.WriteFrame(&buf, fr); err != nil {
			return err
		}
		seed := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(buf.String()))
		name := filepath.Join(*out, fmt.Sprintf("flight-%016x", flight.PacketHash(p)))
		if err := os.WriteFile(name, []byte(seed), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d fuzz seeds from %d captured frames to %s\n", written, len(b.Packets), *out)
	return nil
}
