// Command spotfi-plan evaluates an AP deployment before installation: it
// computes the expected AoA-triangulation error bound across the floor and
// writes a coverage heatmap.
//
// Usage:
//
//	spotfi-plan -bounds 0,0,16,10 -out coverage.svg \
//	    -ap 0,0.4,0.4,31 -ap 1,15.6,0.4,149 -ap 2,8,9.7,-90 [-step 0.5] [-aoastd 5]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"spotfi/internal/cliutil"
	"spotfi/internal/geom"
	"spotfi/internal/plan"
	"spotfi/internal/viz"
)

func main() {
	boundsStr := flag.String("bounds", "0,0,16,10", "floor bounds minX,minY,maxX,maxY (m)")
	out := flag.String("out", "coverage.svg", "output heatmap SVG ('' = text only)")
	step := flag.Float64("step", 0.5, "grid step (m)")
	aoaStd := flag.Float64("aoastd", 5, "assumed per-AP bearing error (degrees, 1σ)")
	threshold := flag.Float64("threshold", 1.0, "coverage threshold (m)")
	var aps cliutil.APList
	flag.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "spotfi-plan:", err)
		os.Exit(1)
	}
	if len(aps) < 2 {
		fail(fmt.Errorf("need at least two -ap flags"))
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		fail(err)
	}
	planAPs := make([]plan.AP, len(aps))
	for i, ap := range aps {
		planAPs[i] = plan.AP{Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	cfg := plan.DefaultConfig()
	cfg.AoAStdRad = geom.Rad(*aoaStd)

	cm, err := plan.Evaluate(bounds, *step, planAPs, cfg)
	if err != nil {
		fail(err)
	}
	frac, med := cm.Summary(*threshold)
	at, worst := cm.WorstCovered()
	fmt.Printf("coverage: %.0f%% of the floor within %.2f m expected error\n", frac*100, *threshold)
	fmt.Printf("median expected error: %.2f m\n", med)
	fmt.Printf("worst covered point: (%.1f, %.1f) at %.2f m — consider an AP nearby\n", at.X, at.Y, worst)

	if *out == "" {
		return
	}
	// Cap infinities for rendering.
	z := make([][]float64, len(cm.Err))
	capV := 3 * med
	if math.IsNaN(capV) || capV <= 0 {
		capV = 5
	}
	for i, row := range cm.Err {
		z[i] = make([]float64, len(row))
		for j, e := range row {
			if math.IsInf(e, 1) || e > capV {
				e = capV
			}
			z[i][j] = e
		}
	}
	h := &viz.Heatmap{
		Title:  fmt.Sprintf("expected localization error (σ_AoA = %.0f°)", *aoaStd),
		XLabel: "x (m)",
		YLabel: "y (m)",
		X:      cm.Xs,
		Y:      cm.Ys,
		Z:      z,
	}
	svg, err := h.SVG()
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
