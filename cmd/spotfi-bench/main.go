// Command spotfi-bench regenerates every table and figure of the paper's
// evaluation (Sec. 4) on the simulated testbed and prints the series the
// paper reports. Run with -quick for a reduced-scale smoke pass.
//
// Beyond the human-readable tables, the harness maintains a
// machine-readable accuracy/perf fingerprint: -json writes
// BENCH_<runid>.json with per-figure median/p90 error, wall time, and
// heap-allocation deltas; -compare diffs the run against a committed
// baseline (BENCH_baseline.json) and exits non-zero on any regression
// beyond tolerance — the CI bench-baseline gate. Regenerate the committed
// baseline with -write-baseline after an intentional accuracy or cost
// change.
//
// Usage:
//
//	spotfi-bench [-quick] [-seed N] [-packets N] [-targets N] [-only figID]
//	    [-json] [-runid ID] [-compare BENCH_baseline.json]
//	    [-write-baseline BENCH_baseline.json] [-results out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spotfi/internal/experiments"
	"spotfi/internal/music"
	"spotfi/internal/testbed"
	"spotfi/internal/viz"
)

// writeSVG renders a figure's series as a CDF plot SVG next to the text
// output.
func writeSVG(dir string, r *experiments.Result) error {
	labels := make([]string, 0, len(r.Series))
	samples := make([][]float64, 0, len(r.Series))
	for _, s := range r.Series {
		if len(s.Values) < 2 {
			continue // single-value series (e.g. fig5c spreads) have no CDF
		}
		labels = append(labels, s.Label)
		samples = append(samples, s.Values)
	}
	if len(labels) == 0 {
		return nil
	}
	plot, err := viz.CDFPlot(fmt.Sprintf("%s: %s", r.ID, r.Title), r.Unit, labels, samples)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, r.ID+".svg"), []byte(plot.SVG()), 0o644)
}

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run (fewer targets and packets)")
	seed := flag.Int64("seed", 1, "experiment seed")
	packets := flag.Int("packets", 0, "packets per burst (0 = paper default of 40)")
	targets := flag.Int("targets", 0, "max targets per deployment (0 = all)")
	repeats := flag.Int("repeats", 1, "independently-seeded deployments to pool per experiment")
	only := flag.String("only", "", "run a single figure (fig5ab, fig5c, fig7a, fig7b, fig7c, fig8a, fig8b, fig9a, fig9b, planval)")
	dense := flag.Bool("dense", false, "disable the coarse-to-fine MUSIC sweep (full-grid A/B reference)")
	svgDir := flag.String("svg", "", "also write one SVG figure per experiment into this directory")
	resultsOut := flag.String("results", "", "also write the raw result series as JSON to this file")
	jsonOut := flag.Bool("json", false, "write the machine-readable baseline to BENCH_<runid>.json")
	runID := flag.String("runid", "", "run identifier for -json (default: UTC timestamp)")
	comparePath := flag.String("compare", "", "compare this run against a baseline file; exit 1 on regression")
	writeBaseline := flag.String("write-baseline", "", "write the machine-readable baseline to this exact path")
	flag.Parse()

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
		// Fig. 6 equivalents: the deployment maps themselves.
		for _, d := range []*testbed.Deployment{
			testbed.Office(*seed), testbed.HighNLoS(*seed), testbed.Corridor(*seed),
		} {
			svg, err := d.FloorPlan().SVG()
			if err != nil {
				fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*svgDir, "testbed-"+d.Name+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
				os.Exit(1)
			}
		}
	}

	opts := experiments.Options{Seed: *seed, Packets: *packets, MaxTargets: *targets, Repeats: *repeats, DenseSweep: *dense}
	if *quick {
		if opts.Packets == 0 {
			opts.Packets = 10
		}
		if opts.MaxTargets == 0 {
			opts.MaxTargets = 8
		}
	}

	id := *runID
	if id == "" {
		id = time.Now().UTC().Format("20060102T150405Z")
	}
	baseline := experiments.NewBaseline(id, time.Now().UTC().Format(time.RFC3339), opts)

	fns := map[string]func(experiments.Options) (*experiments.Result, error){
		"fig5ab":  experiments.Fig5Sanitization,
		"fig5c":   experiments.Fig5cClusters,
		"fig7a":   experiments.Fig7aOffice,
		"fig7b":   experiments.Fig7bNLoS,
		"fig7c":   experiments.Fig7cCorridor,
		"fig8a":   experiments.Fig8aAoA,
		"fig8b":   experiments.Fig8bSelection,
		"fig9a":   experiments.Fig9aDensity,
		"fig9b":   experiments.Fig9bPackets,
		"planval": experiments.PlanValidation,
	}
	order := []string{"fig5ab", "fig5c", "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig9a", "fig9b", "planval"}

	var collected []*experiments.Result
	run := func(id string) error {
		fn, ok := fns[id]
		if !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
		// Allocation deltas as a machine-independent cost proxy alongside
		// the machine-dependent wall time.
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		baseline.AddFigure(r, wall.Seconds(),
			after.TotalAlloc-before.TotalAlloc, after.Mallocs-before.Mallocs)
		collected = append(collected, r)
		fmt.Print(r.Render())
		fmt.Printf("(%s in %v)\n\n", id, wall.Round(time.Millisecond))
		if *svgDir != "" {
			if err := writeSVG(*svgDir, r); err != nil {
				return fmt.Errorf("%s: svg: %w", id, err)
			}
		}
		return nil
	}

	if *only != "" {
		if err := run(*only); err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
	} else {
		for _, id := range order {
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
				os.Exit(1)
			}
		}
	}
	// One steering table per (grid, array, band) should serve the whole
	// run; a miss count tracking the figure count would mean the cache key
	// is broken.
	hits, misses, entries := music.SteeringCacheStats()
	fmt.Printf("steering cache: %d hits, %d misses, %d table(s) resident\n\n", hits, misses, entries)

	if *resultsOut != "" {
		data, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*resultsOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *resultsOut)
	}
	for _, path := range baselinePaths(*jsonOut, id, *writeBaseline) {
		if err := baseline.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *comparePath != "" {
		base, err := experiments.LoadBaseline(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-bench:", err)
			os.Exit(1)
		}
		violations := experiments.Compare(base, baseline, experiments.DefaultTolerance())
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "spotfi-bench: %d regression(s) vs %s:\n", len(violations), *comparePath)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  -", v)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline check passed: no regressions vs %s\n", *comparePath)
	}
}

// baselinePaths resolves where the machine-readable baseline goes: the
// conventional BENCH_<runid>.json with -json, an explicit path with
// -write-baseline, or both.
func baselinePaths(jsonOut bool, runID, explicit string) []string {
	var out []string
	if jsonOut {
		out = append(out, "BENCH_"+runID+".json")
	}
	if explicit != "" {
		out = append(out, explicit)
	}
	return out
}
