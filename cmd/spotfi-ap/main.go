// Command spotfi-ap runs one simulated AP agent: it synthesizes CSI for a
// target transmitting in the office testbed (or replays a recorded trace)
// and streams the reports to a spotfi-server.
//
// Usage:
//
//	spotfi-ap -server 127.0.0.1:7100 -id 0 -target 3 [-count 100] [-interval 100ms]
//	spotfi-ap -server 127.0.0.1:7100 -id 0 -trace capture.sft
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/sim"
	"spotfi/internal/testbed"
)

// newRand derives a per-(seed, AP, target) RNG for the synthesizer.
func newRand(seed int64, id, target int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(id)*7919 + int64(target) + 17))
}

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7100", "central server address")
	id := flag.Int("id", 0, "AP index in the office testbed (0-5)")
	target := flag.Int("target", 0, "target index in the office testbed")
	count := flag.Int("count", 100, "packets to send (0 = unlimited)")
	interval := flag.Duration("interval", 100*time.Millisecond, "packet pacing (paper: 100ms)")
	tracePath := flag.String("trace", "", "replay a CSI trace file instead of simulating")
	seed := flag.Int64("seed", 1, "testbed seed")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println("spotfi-ap", cliutil.ReadBuild())
		return
	}
	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-ap:", err)
		os.Exit(2)
	}

	var source apnode.PacketSource
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-ap:", err)
			os.Exit(1)
		}
		defer f.Close()
		source = &apnode.TraceSource{R: csi.NewTraceReader(f)}
	} else {
		d := testbed.Office(*seed)
		if *id < 0 || *id >= len(d.APs) {
			fmt.Fprintf(os.Stderr, "spotfi-ap: AP index %d out of range [0,%d]\n", *id, len(d.APs)-1)
			os.Exit(2)
		}
		if *target < 0 || *target >= len(d.Targets) {
			fmt.Fprintf(os.Stderr, "spotfi-ap: target index %d out of range [0,%d]\n", *target, len(d.Targets)-1)
			os.Exit(2)
		}
		link := d.Link(*id, *target)
		syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp, newRand(*seed, *id, *target))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-ap:", err)
			os.Exit(1)
		}
		source = &apnode.SynthSource{Syn: syn, TargetMAC: testbed.TargetMAC(*target), Limit: *count}
		logger.Info("simulating AP", "ap", *id, "pos", d.APs[*id].Pos.String(),
			"target", *target, "target_pos", d.Targets[*target].String())
	}

	agent := &apnode.Agent{
		APID:       *id,
		ServerAddr: *serverAddr,
		Source:     source,
		Interval:   *interval,
		Logger:     logger,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//lint:allow gospawn single signal-watcher goroutine; exits with the process
	go func() {
		<-sig
		cancel()
	}()

	if err := agent.RunWithRetry(ctx, 5, 300*time.Millisecond); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "spotfi-ap:", err)
		os.Exit(1)
	}
	logger.Info("done", "ap", *id, "dropped", agent.Dropped())
}
