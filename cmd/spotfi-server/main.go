// Command spotfi-server runs the central SpotFi localization server: it
// accepts AP connections, assembles per-target CSI bursts, runs the SpotFi
// pipeline on each complete burst, and prints location estimates.
//
// AP positions are supplied as repeated -ap flags: "id,x,y,normalDeg".
//
// Complete bursts are localized by a bounded worker pool (-workers, -queue)
// rather than one goroutine per burst: under overload the queue fills and
// further bursts are dropped and counted, instead of goroutines (and their
// pinned CSI buffers) growing without bound.
//
// The ingest path is hardened against misbehaving APs: connections that
// stall mid-handshake or go silent are reaped after -idle-timeout,
// buffered packets of bursts that never complete are evicted after
// -burst-ttl, and a panic while localizing one burst is recovered and
// counted instead of killing a worker.
//
// With -debug-addr set, an HTTP listener exposes /metrics (Prometheus text
// format, including Go runtime telemetry), /healthz (liveness), /readyz
// (readiness: 503 until at least one AP has delivered a packet within
// -burst-ttl, with a per-AP staleness report), /debug/traces (recent burst
// traces as JSON, or an HTML waterfall with ?view=html), /debug/quality
// (per-burst confidence scores and the per-AP drift/health scoreboard, JSON
// or ?view=html), and net/http/pprof under /debug/pprof/.
//
// Every fix carries a confidence score in [0,1] folding DSP internals
// (likelihood margin, eigen gap, STO stability, AoA agreement, solver
// convergence, AP geometry); bursts scoring below -quality-floor are
// counted in spotfi_quality_low_total.
//
// Per-burst tracing samples 1 in -trace-sample bursts (0 disables) and
// always retains traces slower than -trace-slow. Logs are structured
// (-log-format text|json) and carry trace/burst/AP IDs.
//
// Usage:
//
//	spotfi-server -listen 127.0.0.1:7100 \
//	    -ap 0,0.4,0.4,45 -ap 1,15.6,0.4,135 -ap 2,8,9.7,-90 \
//	    -bounds 0,0,16,10 [-batch 10] [-minaps 3] \
//	    [-workers N] [-queue 64] [-idle-timeout 90s] [-burst-ttl 30s] \
//	    [-trace-sample 100] [-trace-slow 5s] [-log-format text] \
//	    [-quality-floor 0.25] [-debug-addr 127.0.0.1:7101]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"spotfi"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/quality"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
)

type burstJob struct {
	mac    string
	bursts map[int][]*csi.Packet
	tr     *trace.Trace
}

// localizeMetrics holds the serving-loop series. Registration happens
// once, here, before any worker starts: Registry registration takes a
// lock, so hot paths only touch the returned handles.
type localizeMetrics struct {
	overloadDrops  *obs.Counter
	localizeErrors *obs.Counter
	localizePanics *obs.Counter
	queueDepth     *obs.Gauge
}

func newLocalizeMetrics(reg *obs.Registry) *localizeMetrics {
	return &localizeMetrics{
		overloadDrops: reg.Counter("spotfi_server_bursts_overload_dropped_total",
			"Complete bursts dropped because the localization queue was full.", nil),
		localizeErrors: reg.Counter("spotfi_server_localize_errors_total",
			"Bursts whose localization failed end-to-end.", nil),
		localizePanics: reg.Counter("spotfi_server_localize_panics_total",
			"Localization worker panics recovered; the burst was discarded.", nil),
		queueDepth: reg.Gauge("spotfi_server_localize_queue_depth",
			"Bursts waiting for a localization worker.", nil),
	}
}

// localizeOne runs one burst through the pipeline with panic isolation: a
// numerical blow-up on one poisoned burst must cost that burst, not a
// worker (and with it, eventually, the whole pool).
func localizeOne(loc *spotfi.Localizer, lm *localizeMetrics, logger *slog.Logger, j burstJob) {
	// The worker owns the burst lifecycle end: whatever happens below, the
	// trace is completed and handed to its sinks.
	defer j.tr.Finish()
	defer func() {
		if r := recover(); r != nil {
			lm.localizePanics.Inc()
			logger.Error("localize panic recovered", "mac", j.mac, "trace", j.tr.ID(), "panic", fmt.Sprint(r))
		}
	}()
	p, reports, skipped, err := loc.LocalizeBurstsTraced(j.bursts, j.tr)
	for _, s := range skipped {
		logger.Warn("AP skipped", "mac", j.mac, "trace", j.tr.ID(), "ap", s.APID, "err", s.Err)
	}
	if err != nil {
		lm.localizeErrors.Inc()
		logger.Warn("localize failed", "mac", j.mac, "trace", j.tr.ID(), "err", err)
		return
	}
	logger.Info("target localized", "mac", j.mac, "trace", j.tr.ID(),
		"x", p.X, "y", p.Y, "aps", len(reports), "confidence", p.Confidence)
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7100", "TCP address to listen on")
	boundsStr := flag.String("bounds", "0,0,16,10", "search bounds minX,minY,maxX,maxY (m)")
	batch := flag.Int("batch", 10, "packets per AP per localization burst")
	minAPs := flag.Int("minaps", 3, "minimum APs with a full batch before localizing")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "localization worker goroutines")
	queue := flag.Int("queue", 64, "burst queue depth; bursts beyond it are dropped")
	idleTimeout := flag.Duration("idle-timeout", server.DefaultIdleTimeout,
		"reap AP connections silent for this long (0 disables)")
	burstTTL := flag.Duration("burst-ttl", 30*time.Second,
		"evict buffered packets of incomplete bursts older than this (0 disables)")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz, /debug/traces, and /debug/pprof (disabled if empty)")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N bursts (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", 5*time.Second, "always retain traces of bursts slower than this end-to-end")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	qualityFloor := flag.Float64("quality-floor", quality.DefaultFloor,
		"confidence score below which a fix counts as low-quality")
	version := flag.Bool("version", false, "print build version and exit")
	var aps cliutil.APList
	flag.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	flag.Parse()

	if *version {
		fmt.Println("spotfi-server", cliutil.ReadBuild())
		return
	}
	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if len(aps) < 2 {
		fmt.Fprintln(os.Stderr, "spotfi-server: need at least two -ap flags")
		os.Exit(2)
	}
	if *workers < 1 || *queue < 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -workers and -queue must be ≥ 1")
		os.Exit(2)
	}
	if *idleTimeout < 0 || *burstTTL < 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -idle-timeout and -burst-ttl must be ≥ 0")
		os.Exit(2)
	}
	if *traceSample < 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -trace-sample must be ≥ 0")
		os.Exit(2)
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(2)
	}

	if *qualityFloor < 0 || *qualityFloor > 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -quality-floor must be in [0,1]")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	cliutil.RegisterBuildInfo(reg)
	obs.RegisterRuntimeMetrics(reg)
	spotfi.RegisterSteeringCacheMetrics(reg)
	tracer := trace.New(trace.Config{
		SampleEvery:   *traceSample,
		SlowThreshold: *traceSlow,
		Registry:      reg,
		Logger:        logger,
	})
	monitor := quality.NewMonitor(reg, quality.Config{Floor: *qualityFloor})
	cfg := spotfi.DefaultConfig(bounds)
	cfg.Metrics = spotfi.NewPipelineMetrics(reg)
	cfg.QualityMonitor = monitor
	loc, err := spotfi.New(cfg, aps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}

	lm := newLocalizeMetrics(reg)

	// Bounded localization pool: burst handlers run on connection
	// goroutines, so they must never block on or spawn unbounded work.
	jobs := make(chan burstJob, *queue)
	var pool sync.WaitGroup
	for i := 0; i < *workers; i++ {
		pool.Add(1)
		//lint:allow gospawn this loop is the bounded localization pool itself (WaitGroup-joined, -workers sized)
		go func() {
			defer pool.Done()
			for j := range jobs {
				lm.queueDepth.Set(int64(len(jobs)))
				localizeOne(loc, lm, logger, j)
			}
		}()
	}

	metrics := server.NewMetrics(reg)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   *batch,
		MinAPs:      *minAPs,
		MaxBuffered: 40 * *batch,
		BurstTTL:    *burstTTL,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		select {
		case jobs <- burstJob{mac: mac, bursts: bursts, tr: tr}:
			lm.queueDepth.Set(int64(len(jobs)))
		default:
			lm.overloadDrops.Inc()
			tr.Root().SetStr("dropped", "queue full")
			tr.Finish()
			logger.Warn("queue full, burst dropped", "mac", mac, "trace", tr.ID())
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	collector.SetMetrics(metrics)
	collector.SetTracer(tracer)
	if *burstTTL > 0 {
		// Sweep a few times per TTL so eviction lag stays a fraction of
		// the staleness bound.
		stopSweeper := collector.StartSweeper(*burstTTL / 4)
		defer stopSweeper()
	}

	srv, err := server.New(collector, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	srv.SetMetrics(metrics)
	srv.SetTimeouts(server.DefaultHandshakeTimeout, *idleTimeout)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	logger.Info("spotfi-server listening", "addr", addr.String(), "aps", len(aps), "workers", *workers)

	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		// /healthz is pure liveness (the process is up); /readyz is
		// readiness (at least one AP delivered a packet within -burst-ttl,
		// so the server can actually produce fixes).
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.Handle("/readyz", srv.Tracker().ReadinessHandler(*burstTTL))
		mux.Handle("/debug/traces", tracer.Handler())
		mux.Handle("/debug/quality", monitor.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//lint:allow gospawn debug HTTP listener lives for the whole process; no join needed
		go func() {
			logger.Info("debug endpoints up", "url", "http://"+*debugAddr+"/metrics")
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	if err := srv.Close(); err != nil {
		logger.Warn("close failed", "err", err)
	}
	// All connection goroutines are drained: no handler can enqueue now.
	close(jobs)
	pool.Wait()
}
