// Command spotfi-server runs the central SpotFi localization server: it
// accepts AP connections, assembles per-target CSI bursts, runs the SpotFi
// pipeline on each complete burst, and prints location estimates.
//
// AP positions are supplied as repeated -ap flags: "id,x,y,normalDeg".
//
// Usage:
//
//	spotfi-server -listen 127.0.0.1:7100 \
//	    -ap 0,0.4,0.4,45 -ap 1,15.6,0.4,135 -ap 2,8,9.7,-90 \
//	    -bounds 0,0,16,10 [-batch 10] [-minaps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"spotfi"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7100", "TCP address to listen on")
	boundsStr := flag.String("bounds", "0,0,16,10", "search bounds minX,minY,maxX,maxY (m)")
	batch := flag.Int("batch", 10, "packets per AP per localization burst")
	minAPs := flag.Int("minaps", 3, "minimum APs with a full batch before localizing")
	var aps cliutil.APList
	flag.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	flag.Parse()

	if len(aps) < 2 {
		fmt.Fprintln(os.Stderr, "spotfi-server: need at least two -ap flags")
		os.Exit(2)
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(2)
	}

	loc, err := spotfi.New(spotfi.DefaultConfig(bounds), aps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}

	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   *batch,
		MinAPs:      *minAPs,
		MaxBuffered: 40 * *batch,
	}, func(mac string, bursts map[int][]*csi.Packet) {
		go func() {
			p, reports, err := loc.LocalizeBursts(bursts)
			if err != nil {
				log.Printf("localize %s: %v", mac, err)
				return
			}
			log.Printf("target %s at (%.2f, %.2f) m  [%d APs]", mac, p.X, p.Y, len(reports))
		}()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}

	srv, err := server.New(collector, log.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	log.Printf("spotfi-server listening on %v (%d APs registered)", addr, len(aps))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
