// Command spotfi-server runs the central SpotFi localization server: it
// accepts AP connections, assembles per-target CSI bursts, runs the SpotFi
// pipeline on each complete burst, and prints location estimates.
//
// AP positions are supplied as repeated -ap flags: "id,x,y,normalDeg".
//
// Complete bursts are localized by a bounded worker pool (-workers) fed
// through an admission-controlled queue (-queue, -admit-*) rather than one
// goroutine per burst. Under overload the queue sheds the *stalest* work
// first instead of tail-dropping the freshest: bursts that waited past
// -admit-deadline are shed outright, a CoDel-style control law
// (-admit-target, -admit-interval) sheds at an increasing rate while the
// standing queue persists, and at capacity the chattiest target's oldest
// burst is evicted so one device cannot starve the fleet. Shedding is
// summarized in the log at most once per -admit-log-every and exported as
// spotfi_admit_shed_total{reason=...}.
//
// Load also degrades fidelity before it degrades availability: a mode
// ladder steps the pipeline down from full MUSIC to the ESPRIT fast path
// to a coarser MUSIC grid as queue sojourn crosses thresholds derived from
// -admit-target, and steps back up under hysteresis. Every fix carries the
// mode it was computed in.
//
// Per-AP circuit breakers (-breaker-*) quarantine misbehaving APs: drift
// breaches, per-burst quality collapses, non-finite CSI streams, and
// reconnect churn trip an AP's breaker open, excluding it from
// localization (its packets are still accepted) until a cooldown elapses
// and a few healthy probation bursts close the breaker again. Breaker
// states are exported as spotfi_ap_breaker_state{ap=...}.
//
// The ingest path is hardened against misbehaving APs: connections that
// stall mid-handshake or go silent are reaped after -idle-timeout,
// buffered packets of bursts that never complete are evicted after
// -burst-ttl, and a panic while localizing one burst is recovered and
// counted instead of killing a worker.
//
// On SIGINT/SIGTERM the server drains gracefully: intake stops, queued
// bursts are localized against -drain-timeout, and whatever remains past
// the deadline is shed and counted.
//
// With -debug-addr set, an HTTP listener exposes /metrics (Prometheus text
// format, including Go runtime telemetry), /healthz (liveness), /readyz
// (readiness: 503 until at least one AP has delivered a packet within
// -burst-ttl, while admission control is shedding more than
// -admit-shed-floor of bursts, or while an SLO is burning), /debug/traces
// (recent burst traces as JSON, or an HTML waterfall with ?view=html),
// /debug/quality (per-burst confidence scores and the per-AP drift/health
// scoreboard, JSON or ?view=html), /debug/slo (multi-window SLO burn
// rates, JSON or ?view=html), /debug/fixes (a bounded-fanout JSON-lines
// stream of every fix: MAC, position, confidence, mode, capture and emit
// timestamps — slow subscribers are dropped and counted), and
// net/http/pprof under /debug/pprof/.
//
// Two SLOs are tracked with Google SRE-style multi-window burn rates
// (-slo-fast-window/-slo-slow-window): packet→fix latency
// (-slo-latency-bound at -slo-latency-target) and admission shed rate
// (-slo-shed-target). Both export spotfi_slo_* gauges; when both windows
// of an objective burn faster than -slo-burn-threshold, /readyz degrades
// with the objective named in the reason.
//
// Every fix carries a confidence score in [0,1] folding DSP internals
// (likelihood margin, eigen gap, STO stability, AoA agreement, solver
// convergence, AP geometry); bursts scoring below -quality-floor are
// counted in spotfi_quality_low_total.
//
// Per-burst tracing samples 1 in -trace-sample bursts (0 disables) and
// always retains traces slower than -trace-slow. Logs are structured
// (-log-format text|json) and carry trace/burst/AP IDs.
//
// With -flight-dir set, a black-box flight recorder (internal/flight)
// taps every ingested packet into bounded per-AP rings and journals the
// server's control decisions (sheds, mode changes, breaker flips,
// quarantines, SLO burn edges, per-fix confidence). On an anomaly — a
// breaker opening, an SLO starting to burn, the shed rate crossing
// -admit-shed-floor, a burst-handler panic, a fix below
// -flight-confidence-floor, or POST /debug/flight/dump — it freezes an
// atomic bundle (SFT1 frames, journal, fix records, metrics snapshot,
// traces, goroutine dump, effective config) under -flight-dir, rate-
// limited by -flight-cooldown and bounded by -flight-max-bundles.
// Graceful drain flushes a final bundle. `spotfi-trace replay` re-runs a
// bundle's fixes through the real pipeline bit-for-bit; the debug
// listener serves recorder status and bundles at /debug/flight, and an
// index of every debug endpoint at /debug/.
//
// Usage:
//
//	spotfi-server -listen 127.0.0.1:7100 \
//	    -ap 0,0.4,0.4,45 -ap 1,15.6,0.4,135 -ap 2,8,9.7,-90 \
//	    -bounds 0,0,16,10 [-batch 10] [-minaps 3] \
//	    [-workers N] [-queue 64] [-idle-timeout 90s] [-burst-ttl 30s] \
//	    [-admit-target 150ms] [-admit-deadline 1s] [-admit-interval 2s] \
//	    [-admit-shed-floor 0.5] [-admit-log-every 5s] [-modes 3] \
//	    [-breaker-window 30s] [-breaker-failures 8] [-breaker-cooldown 15s] \
//	    [-breaker-probes 3] [-drain-timeout 5s] \
//	    [-trace-sample 100] [-trace-slow 5s] [-log-format text] \
//	    [-quality-floor 0.25] [-debug-addr 127.0.0.1:7101] \
//	    [-flight-dir /var/lib/spotfi/flight] [-flight-frames 256] \
//	    [-flight-cooldown 30s] [-flight-max-bundles 8] \
//	    [-flight-confidence-floor 0.05]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"spotfi"
	"spotfi/internal/admit"
	"spotfi/internal/cliutil"
	"spotfi/internal/csi"
	"spotfi/internal/debugmux"
	"spotfi/internal/feed"
	"spotfi/internal/flight"
	"spotfi/internal/obs"
	"spotfi/internal/obs/quality"
	"spotfi/internal/obs/slo"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
)

type burstJob struct {
	mac    string
	bursts map[int][]*csi.Packet
	tr     *trace.Trace
}

// localizeMetrics holds the serving-loop series. Registration happens
// once, here, before any worker starts: Registry registration takes a
// lock, so hot paths only touch the returned handles.
type localizeMetrics struct {
	localizeErrors *obs.Counter
	localizePanics *obs.Counter
	breakerDrops   *obs.Counter
	fixLatency     *obs.Histogram
}

func newLocalizeMetrics(reg *obs.Registry) *localizeMetrics {
	return &localizeMetrics{
		localizeErrors: reg.Counter("spotfi_server_localize_errors_total",
			"Bursts whose localization failed end-to-end.", nil),
		localizePanics: reg.Counter("spotfi_server_localize_panics_total",
			"Localization worker panics recovered; the burst was discarded.", nil),
		breakerDrops: reg.Counter("spotfi_server_bursts_breaker_dropped_total",
			"Queued bursts dropped because breakers opened on too many of their APs before a worker picked them up.", nil),
		// HDR-style buckets from 100 µs to 10 s; the grid hits 1.0 (and
		// every decade) exactly, so the default -slo-latency-bound is an
		// exact bucket bound and the SLO's good-count is not snapped.
		fixLatency: reg.Histogram("spotfi_fix_latency_seconds",
			"Packet→fix latency: newest CSI sender timestamp in the burst to fix emission. Only observed when sender clocks look like wall clocks.",
			obs.ExpBuckets(100e-6, 10, 5), nil),
	}
}

// fixLatencySane bounds what we are willing to call an end-to-end
// latency: sender timestamps are only comparable to the server clock
// when the AP stamps wall-clock time (spotfi-loadgen does; the sim's
// synthetic 100 ms-per-packet timeline does not). Outside this window
// the observation would poison the latency SLO, so it is skipped.
const fixLatencySane = 10 * time.Minute

// captureNs returns the newest sender timestamp across the burst — the
// fix's capture time on the sender clock.
func captureNs(bursts map[int][]*csi.Packet) int64 {
	var newest int64
	for _, pkts := range bursts {
		for _, p := range pkts {
			if p.TimestampNs > newest {
				newest = p.TimestampNs
			}
		}
	}
	return newest
}

// localizeOne runs one burst through the pipeline with panic isolation: a
// numerical blow-up on one poisoned burst must cost that burst, not a
// worker (and with it, eventually, the whole pool). Bursts whose APs were
// quarantined while queued are re-filtered here, so the breaker's view is
// never more than one queue sojourn stale.
func localizeOne(loc *spotfi.Localizer, breakers *admit.BreakerSet, lm *localizeMetrics, fixes *feed.Feed, rec *flight.Recorder, confFloor float64, logger *slog.Logger, j burstJob) {
	// The worker owns the burst lifecycle end: whatever happens below, the
	// trace is completed and handed to its sinks.
	defer j.tr.Finish()
	defer func() {
		if r := recover(); r != nil {
			lm.localizePanics.Inc()
			logger.Error("localize panic recovered", "mac", j.mac, "trace", j.tr.ID(), "panic", fmt.Sprint(r))
		}
	}()
	excluded := 0
	for ap := range j.bursts {
		if !breakers.Allow(ap) {
			delete(j.bursts, ap)
			excluded++
		}
	}
	if excluded > 0 {
		j.tr.Root().SetInt("breaker_excluded", int64(excluded))
	}
	if len(j.bursts) < 2 {
		lm.breakerDrops.Inc()
		j.tr.Root().SetStr("dropped", "breaker")
		return
	}
	capture := captureNs(j.bursts)
	p, reports, skipped, err := loc.LocalizeBurstsTraced(j.bursts, j.tr)
	for _, s := range skipped {
		logger.Warn("AP skipped", "mac", j.mac, "trace", j.tr.ID(), "ap", s.APID, "err", s.Err)
	}
	if err != nil {
		lm.localizeErrors.Inc()
		logger.Warn("localize failed", "mac", j.mac, "trace", j.tr.ID(), "err", err)
		return
	}
	emit := time.Now().UnixNano()
	if lat := time.Duration(emit - capture); capture > 0 && lat >= 0 && lat < fixLatencySane {
		lm.fixLatency.Observe(lat.Seconds())
	}
	fixes.Publish(feed.Fix{
		MAC:        j.mac,
		X:          p.X,
		Y:          p.Y,
		Confidence: p.Confidence,
		Mode:       p.Mode,
		CaptureNs:  capture,
		EmitNs:     emit,
		APs:        len(reports),
	})
	// j.bursts is the post-breaker-filter composition at this point —
	// exactly what the pipeline consumed, which is what replay must feed.
	rec.RecordFix(j.mac, p.Mode, p.X, p.Y, p.Confidence, j.bursts)
	if p.Confidence < confFloor {
		rec.Trigger(flight.TriggerLowConfidence,
			fmt.Sprintf("fix for %s scored %.3f < floor %.3f", j.mac, p.Confidence, confFloor))
	}
	logger.Info("target localized", "mac", j.mac, "trace", j.tr.ID(),
		"x", p.X, "y", p.Y, "aps", len(reports), "confidence", p.Confidence, "mode", p.Mode)
}

// effectiveFlags snapshots every flag's effective value (defaults
// included) for the flight bundle: a bundle should say how the server was
// actually configured, not just which flags were passed.
func effectiveFlags() map[string]string {
	m := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
	return m
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7100", "TCP address to listen on")
	boundsStr := flag.String("bounds", "0,0,16,10", "search bounds minX,minY,maxX,maxY (m)")
	batch := flag.Int("batch", 10, "packets per AP per localization burst")
	minAPs := flag.Int("minaps", 3, "minimum APs with a full batch before localizing")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "localization worker goroutines")
	queue := flag.Int("queue", 64, "burst queue capacity; at capacity the chattiest target's oldest burst is evicted")
	idleTimeout := flag.Duration("idle-timeout", server.DefaultIdleTimeout,
		"reap AP connections silent for this long (0 disables)")
	burstTTL := flag.Duration("burst-ttl", 30*time.Second,
		"evict buffered packets of incomplete bursts older than this (0 disables)")
	admitTarget := flag.Duration("admit-target", 150*time.Millisecond,
		"acceptable standing queue sojourn; CoDel shedding engages above it")
	admitDeadline := flag.Duration("admit-deadline", time.Second,
		"hard freshness budget: queued bursts older than this are shed")
	admitInterval := flag.Duration("admit-interval", 2*time.Second,
		"CoDel observation interval before shedding starts")
	admitShedFloor := flag.Float64("admit-shed-floor", 0.5,
		"shed-rate fraction above which /readyz reports degraded")
	admitLogEvery := flag.Duration("admit-log-every", 5*time.Second,
		"summarize shed bursts in the log at most this often")
	modes := flag.Int("modes", 3,
		"degradation ladder depth: 1 full MUSIC only, 2 adds the ESPRIT fast path, 3 adds the coarse grid")
	breakerWindow := flag.Duration("breaker-window", 30*time.Second,
		"failure window for tripping an AP's circuit breaker")
	breakerFailures := flag.Int("breaker-failures", 8,
		"failures within -breaker-window that trip an AP's breaker open")
	breakerCooldown := flag.Duration("breaker-cooldown", 15*time.Second,
		"quarantine before an open breaker probes the AP again (doubles per reopen)")
	breakerProbes := flag.Int("breaker-probes", 3,
		"healthy probation bursts that close a half-open breaker")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second,
		"shutdown budget for localizing already-queued bursts; the rest are shed")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz, /debug/traces, and /debug/pprof (disabled if empty)")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N bursts (0 disables tracing)")
	traceSlow := flag.Duration("trace-slow", 5*time.Second, "always retain traces of bursts slower than this end-to-end")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	qualityFloor := flag.Float64("quality-floor", quality.DefaultFloor,
		"confidence score below which a fix counts as low-quality")
	fixFeedBuffer := flag.Int("fix-feed-buffer", 64,
		"per-subscriber fix-feed buffer; a /debug/fixes client this far behind is dropped")
	fixFeedSubs := flag.Int("fix-feed-subs", 16, "max concurrent /debug/fixes subscribers")
	sloLatencyBound := flag.Duration("slo-latency-bound", time.Second,
		"packet→fix latency bound defining a good fix for the latency SLO")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99,
		"fraction of fixes that must meet -slo-latency-bound")
	sloShedTarget := flag.Float64("slo-shed-target", 0.95,
		"fraction of bursts admission control must deliver (not shed)")
	sloFastWindow := flag.Duration("slo-fast-window", 5*time.Minute, "fast burn-rate window")
	sloSlowWindow := flag.Duration("slo-slow-window", time.Hour, "slow burn-rate window")
	sloTick := flag.Duration("slo-tick", 10*time.Second, "SLO source sampling interval")
	sloBurnThreshold := flag.Float64("slo-burn-threshold", 6,
		"burn rate both windows must exceed before an SLO counts as burning (degrades /readyz)")
	flightDir := flag.String("flight-dir", "",
		"arm the flight recorder and write capture bundles under this directory (disabled if empty)")
	flightFrames := flag.Int("flight-frames", 256, "flight recorder: raw frames retained per AP")
	flightCooldown := flag.Duration("flight-cooldown", 30*time.Second,
		"flight recorder: minimum spacing between automatic bundle dumps; extra triggers are coalesced")
	flightMaxBundles := flag.Int("flight-max-bundles", 8,
		"flight recorder: on-disk bundle cap; oldest bundles are pruned")
	flightConfFloor := flag.Float64("flight-confidence-floor", 0.05,
		"flight recorder: dump a bundle when a fix's confidence falls below this (0 disables)")
	version := flag.Bool("version", false, "print build version and exit")
	var aps cliutil.APList
	flag.Var(&aps, "ap", "AP spec id,x,y,normalDeg (repeatable)")
	flag.Parse()

	if *version {
		fmt.Println("spotfi-server", cliutil.ReadBuild())
		return
	}
	logger, err := cliutil.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if len(aps) < 2 {
		fmt.Fprintln(os.Stderr, "spotfi-server: need at least two -ap flags")
		os.Exit(2)
	}
	if *workers < 1 || *queue < 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -workers and -queue must be ≥ 1")
		os.Exit(2)
	}
	if *idleTimeout < 0 || *burstTTL < 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -idle-timeout and -burst-ttl must be ≥ 0")
		os.Exit(2)
	}
	if *traceSample < 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -trace-sample must be ≥ 0")
		os.Exit(2)
	}
	if *admitTarget <= 0 || *admitInterval <= 0 || *admitDeadline < *admitTarget {
		fmt.Fprintln(os.Stderr, "spotfi-server: -admit-target/-admit-interval must be > 0 and -admit-deadline ≥ -admit-target")
		os.Exit(2)
	}
	if *admitShedFloor <= 0 || *admitShedFloor > 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -admit-shed-floor must be in (0,1]")
		os.Exit(2)
	}
	if *modes < 1 || *modes > 3 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -modes must be 1, 2, or 3")
		os.Exit(2)
	}
	if *breakerWindow <= 0 || *breakerCooldown <= 0 || *breakerFailures < 1 || *breakerProbes < 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -breaker-* values must be positive")
		os.Exit(2)
	}
	if *drainTimeout < 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -drain-timeout must be ≥ 0")
		os.Exit(2)
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(2)
	}

	if *qualityFloor < 0 || *qualityFloor > 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -quality-floor must be in [0,1]")
		os.Exit(2)
	}
	if *fixFeedBuffer < 1 || *fixFeedSubs < 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -fix-feed-buffer and -fix-feed-subs must be ≥ 1")
		os.Exit(2)
	}
	if *sloLatencyBound <= 0 || *sloFastWindow <= 0 || *sloSlowWindow < *sloFastWindow || *sloTick <= 0 || *sloBurnThreshold <= 0 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -slo-latency-bound/-slo-*-window/-slo-tick/-slo-burn-threshold must be positive, slow ≥ fast")
		os.Exit(2)
	}
	if *sloLatencyTarget <= 0 || *sloLatencyTarget >= 1 || *sloShedTarget <= 0 || *sloShedTarget >= 1 {
		fmt.Fprintln(os.Stderr, "spotfi-server: -slo-latency-target and -slo-shed-target must be in (0,1)")
		os.Exit(2)
	}
	if *flightDir != "" && (*flightFrames < 1 || *flightMaxBundles < 1 || *flightCooldown <= 0 ||
		*flightConfFloor < 0 || *flightConfFloor > 1) {
		fmt.Fprintln(os.Stderr, "spotfi-server: -flight-frames/-flight-max-bundles must be ≥ 1, -flight-cooldown > 0, -flight-confidence-floor in [0,1]")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	cliutil.RegisterBuildInfo(reg)
	obs.RegisterRuntimeMetrics(reg)
	spotfi.RegisterSteeringCacheMetrics(reg)
	tracer := trace.New(trace.Config{
		SampleEvery:   *traceSample,
		SlowThreshold: *traceSlow,
		Registry:      reg,
		Logger:        logger,
	})

	cfg := spotfi.DefaultConfig(bounds)

	// Flight recorder (nil when disarmed: every method is a nil-safe
	// no-op, so the wiring below costs nothing without -flight-dir). The
	// embedded ServerConfig pins everything `spotfi-trace replay` needs to
	// rebuild this exact pipeline — including the radian AP normals, so
	// replayed geometry is bit-identical.
	var rec *flight.Recorder
	if *flightDir != "" {
		specs := make([]flight.APSpec, len(aps))
		for i, ap := range aps {
			specs[i] = flight.APSpec{ID: ap.ID, X: ap.Pos.X, Y: ap.Pos.Y, NormalRad: ap.NormalAngle}
		}
		rec, err = flight.New(flight.Config{
			Dir:         *flightDir,
			FramesPerAP: *flightFrames,
			Cooldown:    *flightCooldown,
			MaxBundles:  *flightMaxBundles,
			Server: flight.ServerConfig{
				Bounds: [4]float64{bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY},
				APs:    specs,
				Batch:  *batch,
				MinAPs: *minAPs,
				Modes:  *modes,
				Seed:   cfg.Seed,
			},
			Flags:           effectiveFlags(),
			Registry:        reg,
			MetricsSnapshot: reg.Snapshot,
			Traces: func() (recent, slow []trace.TraceData) {
				return tracer.Recent(), tracer.Slow()
			},
			Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotfi-server:", err)
			os.Exit(1)
		}
		logger.Info("flight recorder armed", "dir", *flightDir,
			"frames_per_ap", *flightFrames, "cooldown", *flightCooldown, "max_bundles", *flightMaxBundles)
	}

	// Per-AP circuit breakers, fed from three directions: ingest events
	// (reconnect churn, non-finite CSI) via the server's event sink, drift
	// breaches and per-burst AP scores via the quality monitor's hooks.
	// Every transition lands in the flight journal; opens trigger a dump.
	breakers := admit.NewBreakerSet(reg, admit.BreakerConfig{
		Window:   *breakerWindow,
		Failures: *breakerFailures,
		Cooldown: *breakerCooldown,
		Probes:   *breakerProbes,
		OnTransition: func(ap int, from, to admit.State, kind admit.FailureKind) {
			logger.Warn("AP breaker state change", "ap", ap, "from", from.String(), "to", to.String(), "kind", string(kind))
			rec.Note(flight.EventBreaker, ap, "", from.String()+"→"+to.String()+" ("+string(kind)+")", 0)
			if to == admit.StateOpen {
				rec.Trigger(flight.TriggerBreakerOpen,
					fmt.Sprintf("AP %d breaker opened (%s)", ap, string(kind)))
			}
		},
	})
	monitor := quality.NewMonitor(reg, quality.Config{
		Floor: *qualityFloor,
		OnBurst: func(sc quality.Score) {
			for _, ap := range sc.PerAP {
				breakers.ObserveScore(ap.APID, ap.Score)
			}
		},
		OnDriftBreach: func(apID, breached int) {
			rec.Note(flight.EventDrift, apID, "", "drift breach", float64(breached))
			// A single breached observable can be an outlier burst; two or
			// more breaching together is a real distribution shift.
			if breached >= 2 {
				breakers.Failure(apID, admit.FailDrift)
			}
		},
	})

	cfg.Metrics = spotfi.NewPipelineMetrics(reg)
	cfg.QualityMonitor = monitor
	locs, err := spotfi.BuildLadder(cfg, aps, *modes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}

	lm := newLocalizeMetrics(reg)
	shedlog := admit.NewShedLogger(logger, *admitLogEvery, nil)

	// Fix feed: every successful localization is published to /debug/fixes
	// subscribers (bounded fanout; slow clients are dropped, not waited on).
	fixes := feed.New(feed.Config{
		Buffer:         *fixFeedBuffer,
		MaxSubscribers: *fixFeedSubs,
		Metrics:        feed.NewMetrics(reg),
	})

	// Admission-controlled burst queue: burst handlers run on connection
	// goroutines, so they must never block; workers pop through the
	// CoDel/deadline policy so they never waste time on stale bursts.
	adq := admit.NewQueue(admit.QueueConfig{
		Capacity: *queue,
		Target:   *admitTarget,
		Deadline: *admitDeadline,
		Interval: *admitInterval,
		Metrics:  admit.NewQueueMetrics(reg),
		OnShed: func(it admit.Item, reason admit.ShedReason) {
			j := it.Payload.(burstJob)
			j.tr.Root().SetStr("shed", string(reason))
			j.tr.Finish()
			shedlog.Note(reason)
			rec.Note(flight.EventShed, -1, j.mac, string(reason), 0)
		},
	})

	// Degradation ladder: sojourn thresholds derived from the admission
	// target, bounded by -modes.
	lcfg := admit.DefaultLadderConfig(*admitTarget)
	lcfg.MaxMode = admit.Mode(*modes - 1)
	lcfg.OnChange = func(from, to admit.Mode) {
		logger.Warn("degradation mode change", "from", from.String(), "to", to.String())
		rec.Note(flight.EventMode, -1, "", from.String()+"→"+to.String(), float64(to))
	}
	ladder := admit.NewLadder(reg, lcfg)

	// SLO burn-rate tracking over the latency histogram and the admission
	// queue's delivered/shed counters, exported as spotfi_slo_* and folded
	// into /readyz: a sustained burn on both windows degrades readiness.
	slos := slo.New(slo.Config{
		FastWindow:    *sloFastWindow,
		SlowWindow:    *sloSlowWindow,
		Tick:          *sloTick,
		BurnThreshold: *sloBurnThreshold,
		OnBurn: func(objective string, burning bool) {
			v := 0.0
			if burning {
				v = 1
			}
			rec.Note(flight.EventSLO, -1, "", objective, v)
			if burning {
				rec.Trigger(flight.TriggerSLOBurn, "SLO "+objective+" burning on both windows")
			}
		},
	})
	slos.Add(slo.LatencyObjective("fix_latency",
		"packet→fix latency within the bound", lm.fixLatency,
		sloLatencyBound.Seconds(), *sloLatencyTarget))
	slos.Add(slo.RatioObjective("admit_shed",
		"bursts delivered (not shed) by admission control", *sloShedTarget,
		func() (uint64, uint64) {
			delivered := adq.DeliveredTotal()
			return delivered, delivered + adq.ShedTotal()
		}))
	slos.Register(reg)
	stopSLO := slos.Start()
	defer stopSLO()

	var pool sync.WaitGroup
	for i := 0; i < *workers; i++ {
		pool.Add(1)
		//lint:allow gospawn this loop is the bounded localization pool itself (WaitGroup-joined, -workers sized)
		go func() {
			defer pool.Done()
			for {
				it, sojourn, ok := adq.Pop()
				if !ok {
					return
				}
				mode := ladder.Observe(sojourn)
				localizeOne(locs[mode], breakers, lm, fixes, rec, *flightConfFloor, logger, it.Payload.(burstJob))
			}
		}()
	}

	metrics := server.NewMetrics(reg)
	collector, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   *batch,
		MinAPs:      *minAPs,
		MaxBuffered: 40 * *batch,
		BurstTTL:    *burstTTL,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		adq.Push(mac, burstJob{mac: mac, bursts: bursts, tr: tr})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	collector.SetMetrics(metrics)
	collector.SetTracer(tracer)
	// Quarantined APs are excluded from burst assembly at the source.
	collector.SetQuarantine(breakers.Allow)
	if rec != nil {
		// The tap is only installed when armed, so a disarmed server pays
		// literally nothing on the per-packet path (not even a call).
		collector.SetTap(rec.TapPacket)
		collector.SetPanicHook(func(mac, reason string) {
			rec.Note(flight.EventQuarantine, -1, mac, reason, 0)
			rec.Trigger(flight.TriggerPanic, "burst handler panicked for "+mac)
		})
	}
	if *burstTTL > 0 {
		// Sweep a few times per TTL so eviction lag stays a fraction of
		// the staleness bound.
		stopSweeper := collector.StartSweeper(*burstTTL / 4)
		defer stopSweeper()
	}

	srv, err := server.New(collector, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	srv.SetMetrics(metrics)
	srv.SetTimeouts(server.DefaultHandshakeTimeout, *idleTimeout)
	srv.SetEventSink(breakers)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotfi-server:", err)
		os.Exit(1)
	}
	logger.Info("spotfi-server listening", "addr", addr.String(), "aps", len(aps), "workers", *workers, "modes", *modes)

	if *debugAddr != "" {
		// Every endpoint carries a one-line description; debugmux serves
		// the discoverable index at /debug/ (and /).
		mux := debugmux.New()
		mux.Handle("/metrics", "Prometheus text metrics, including Go runtime telemetry", reg.Handler())
		// /healthz is pure liveness (the process is up); /readyz is
		// readiness (at least one AP delivered a packet within -burst-ttl
		// and admission control is not hard-shedding, so the server can
		// actually produce fixes).
		mux.HandleFunc("/healthz", "liveness: always ok while the process is up", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.Handle("/readyz", "readiness: 503 while no fresh AP traffic, hard-shedding, or an SLO burns",
			srv.Tracker().ReadinessHandler(*burstTTL, func() (string, bool) {
				if rate := adq.ShedRate(); rate > *admitShedFloor {
					return fmt.Sprintf("admission control shedding %.0f%% of bursts", 100*rate), false
				}
				return "", true
			}, slos.ReadyCheck()))
		mux.Handle("/debug/traces", "recent and slow burst traces (JSON, ?view=html waterfall)", tracer.Handler())
		mux.Handle("/debug/quality", "per-burst confidence scores and per-AP drift scoreboard", monitor.Handler())
		mux.Handle("/debug/slo", "multi-window SLO burn rates", slos.Handler())
		mux.Handle("/debug/fixes", "live JSON-lines stream of every fix", fixes.Handler())
		mux.Handle("/debug/flight", "flight recorder: status, bundle index, POST dump to freeze a bundle", rec.Handler())
		mux.Handle("/debug/flight/", "", rec.Handler())
		mux.HandleFunc("/debug/pprof/", "net/http/pprof profiles", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", "", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", "", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", "", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", "", pprof.Trace)
		//lint:allow gospawn debug HTTP listener lives for the whole process; no join needed
		go func() {
			logger.Info("debug endpoints up", "url", "http://"+*debugAddr+"/debug/")
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down, draining queued bursts", "deadline", *drainTimeout)

	// Graceful drain, outermost-in: stop accepting packets, stop burst
	// assembly (waiting out any in-flight handler), then let the workers
	// localize what is already queued — against a deadline, past which the
	// remainder is shed and counted rather than holding the process
	// hostage.
	if err := srv.Close(); err != nil {
		logger.Warn("close failed", "err", err)
	}
	discarded := collector.Shutdown()
	adq.Close()
	done := make(chan struct{})
	//lint:allow gospawn shutdown-only helper; joined via done before exit on both paths
	go func() {
		pool.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*drainTimeout):
		shed := adq.Abort()
		logger.Warn("drain deadline exceeded, shedding queued bursts", "shed", shed)
		<-done
	}
	// Flush the flight recorder last, after the workers have recorded
	// their final fixes: the drain bundle is the black box's "landing"
	// snapshot, covering the shutdown itself.
	if rec != nil {
		if name, derr := rec.DumpNow(flight.TriggerDrain, "graceful drain"); derr != nil {
			logger.Warn("drain flight bundle failed", "err", derr)
		} else {
			logger.Info("drain flight bundle flushed", "bundle", name)
		}
		rec.Close()
	}
	fixes.Close()
	shedlog.Flush()
	logger.Info("drained", "discarded_partial_packets", discarded)
}
